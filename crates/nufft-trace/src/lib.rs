//! Lightweight, zero-dependency tracing for the NUFFT stack.
//!
//! The paper's headline claims are *observability claims* — spreading
//! dominates a 3D type-1 exec (Table I), the SM scheme's subproblem cap
//! makes throughput insensitive to point distribution (Fig. 6). This
//! crate is the instrumentation that turns those claims into measurable
//! artifacts: the counterpart of what nvprof/NSight give cuFINUFFT users
//! on real hardware.
//!
//! Model:
//!
//! * A [`Trace`] is a cheap-to-clone session handle (shared `Arc`
//!   state). Code records into it through three channels:
//!   * **host spans** — RAII guards ([`Trace::span`] or the [`span!`]
//!     macro) timed with the host monotonic clock, nested via a
//!     per-thread span stack (each event carries its parent id);
//!   * **device events/spans** — explicit-timestamp events in
//!     *simulated* seconds, one [`Lane`] per device engine (compute,
//!     H2D, D2H, alloc) plus a `Plan` lane for stage-level spans;
//!   * **counters and gauges** — named atomics for load-balance
//!     statistics (bin histograms, subproblem counts, atomic-contention
//!     and occupancy readings).
//! * Completed events are buffered in a per-thread buffer and drained
//!   into the session's global sink when the thread's span stack
//!   empties, when the buffer fills, or at export.
//! * Exporters: Chrome trace-event JSON ([`TraceReport::chrome_json`],
//!   loadable in Perfetto / `chrome://tracing`, with the simulated GPU
//!   lanes and the host track as separate rows) and a Prometheus-style
//!   text dump ([`TraceReport::prometheus`]).
//!
//! Tracing is strictly opt-in: with no active trace, [`span!`] is a
//! no-op and nothing allocates.

#![forbid(unsafe_code)]

pub mod bench;
pub mod chrome;
mod hist;
pub mod json;
pub mod prom;

pub use hist::{bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};

use std::cell::Cell;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};
use std::time::Instant;

/// Poison-tolerant lock: a panicking recorder thread must not take the
/// whole tracing session down with it, so recover the inner data (the
/// sink holds append-only events and monotonic atomics — every state is
/// consistent mid-update).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which simulated-device engine an event occupies; rendered as one
/// timeline row ("lane") per variant in the Chrome export.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// Plan-level stage spans (build / setpts / execute / spread / fft).
    Plan,
    /// Kernel launches and bulk data-parallel passes (the SM array).
    Compute,
    /// Host-to-device transfers (upload copy engine).
    H2d,
    /// Device-to-host transfers (download copy engine).
    D2h,
    /// Simulated allocations.
    Alloc,
}

impl Lane {
    pub fn label(self) -> &'static str {
        match self {
            Lane::Plan => "plan stages",
            Lane::Compute => "gpu compute",
            Lane::H2d => "gpu h2d",
            Lane::D2h => "gpu d2h",
            Lane::Alloc => "gpu alloc",
        }
    }
}

/// Track an event belongs to: the host wall-clock timeline or one lane
/// of the simulated device timeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Track {
    Host,
    Device(Lane),
}

/// One completed span or instantaneous event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Unique id within the trace (1-based; 0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span at record time (0 for roots).
    pub parent: u64,
    /// Ordinal of the OS thread that recorded the event (process-wide,
    /// 1-based); keys into [`TraceReport::threads`] for the thread's
    /// name. Host events render one Chrome timeline row per tid.
    pub tid: u64,
    pub name: String,
    /// Category string (e.g. "kernel", "memcpy", "stage", "host").
    pub cat: String,
    pub track: Track,
    /// Start in microseconds: host-us since trace creation for
    /// [`Track::Host`], simulated-us since device creation for
    /// [`Track::Device`].
    pub ts_us: f64,
    pub dur_us: f64,
    /// Free-form key/value annotations (dim, method, M, ...).
    pub args: Vec<(String, String)>,
}

#[derive(Default)]
struct Sink {
    events: Vec<TraceEvent>,
}

struct Inner {
    t0: Instant,
    next_id: AtomicU64,
    sink: Mutex<Sink>,
    counters: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<hist::HistCell>>>,
    /// Thread ordinal → thread name, filled in as threads record.
    threads: Mutex<BTreeMap<u64, String>>,
}

/// A tracing session. Clones share the same sink.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("events", &lock(&self.inner.sink).events.len())
            .finish()
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread state: the active-trace stack (for [`span!`] /
/// [`Trace::current`]), the open-span stack (parent ids), and the
/// pending-event buffer drained into the owning trace's sink.
struct ThreadState {
    active: Vec<Trace>,
    open_spans: Vec<u64>,
    buf: Vec<(Weak<Inner>, TraceEvent)>,
}

thread_local! {
    static TLS: RefCell<ThreadState> = const { RefCell::new(ThreadState {
        active: Vec::new(),
        open_spans: Vec::new(),
        buf: Vec::new(),
    }) };
}

/// Buffered events per thread before a forced drain into the sink.
const BUF_FLUSH_LEN: usize = 128;

/// Process-wide OS-thread ordinals (1-based; 0 = unassigned).
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORD: Cell<u64> = const { Cell::new(0) };
}

/// This thread's stable ordinal, assigned on first use.
fn thread_ord() -> u64 {
    THREAD_ORD.with(|c| {
        let mut ord = c.get();
        if ord == 0 {
            ord = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
            c.set(ord);
        }
        ord
    })
}

fn flush_thread_buffer() {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        for (weak, ev) in tls.buf.drain(..) {
            if let Some(inner) = weak.upgrade() {
                lock(&inner.sink).events.push(ev);
            }
        }
    });
}

impl Trace {
    pub fn new() -> Self {
        Trace {
            inner: Arc::new(Inner {
                t0: Instant::now(),
                next_id: AtomicU64::new(1),
                sink: Mutex::new(Sink::default()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                threads: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Note the calling thread in the session's thread table and return
    /// its ordinal (names come from `std::thread::Builder`, so e.g. the
    /// serve worker shows up as `nufft-serve` in the Chrome export).
    pub fn register_thread(&self) -> u64 {
        let tid = thread_ord();
        let mut threads = lock(&self.inner.threads);
        threads.entry(tid).or_insert_with(|| {
            std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"))
        });
        tid
    }

    /// The innermost trace activated on this thread, if any.
    pub fn current() -> Option<Trace> {
        TLS.with(|tls| tls.borrow().active.last().cloned())
    }

    /// Make this trace the thread's current one for the guard's
    /// lifetime, so [`span!`] and [`Trace::current`] find it.
    pub fn activate(&self) -> ActiveGuard {
        TLS.with(|tls| tls.borrow_mut().active.push(self.clone()));
        ActiveGuard { _priv: () }
    }

    /// True when `other` shares this trace's sink.
    pub fn same_session(&self, other: &Trace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn next_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn parent_of_new_event() -> u64 {
        TLS.with(|tls| tls.borrow().open_spans.last().copied().unwrap_or(0))
    }

    /// Queue a completed event in the thread buffer; drain to the sink
    /// when the buffer fills or the thread's span stack is empty.
    fn push_event(&self, ev: TraceEvent) {
        let drain = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            tls.buf.push((Arc::downgrade(&self.inner), ev));
            tls.buf.len() >= BUF_FLUSH_LEN || tls.open_spans.is_empty()
        });
        if drain {
            flush_thread_buffer();
        }
    }

    /// Start a host-timed span; ends (and records) when the guard drops.
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, &[])
    }

    /// [`Trace::span`] with key/value annotations.
    pub fn span_with(&self, name: &str, args: &[(&str, String)]) -> Span {
        let id = self.next_id();
        let parent = Self::parent_of_new_event();
        let tid = self.register_thread();
        TLS.with(|tls| tls.borrow_mut().open_spans.push(id));
        Span {
            trace: self.clone(),
            id,
            parent,
            tid,
            name: name.to_string(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            start: Instant::now(),
        }
    }

    /// Record a span on a simulated-device lane with explicit simulated
    /// start/duration (seconds). The parent is the thread's innermost
    /// open host span, so device work stays attributable.
    pub fn device_span(
        &self,
        lane: Lane,
        name: &str,
        cat: &str,
        start_s: f64,
        dur_s: f64,
        args: &[(&str, String)],
    ) {
        let ev = TraceEvent {
            id: self.next_id(),
            parent: Self::parent_of_new_event(),
            tid: self.register_thread(),
            name: name.to_string(),
            cat: cat.to_string(),
            track: Track::Device(lane),
            ts_us: start_s * 1e6,
            dur_us: dur_s * 1e6,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.push_event(ev);
    }

    /// Record a completed host span retroactively, from explicit
    /// [`Instant`]s. Unlike [`Trace::span`], the interval is over by the
    /// time it is recorded, so nothing nests *under* it — it parents to
    /// the thread's innermost open span like any other event. This is
    /// how the serve layer records a request's queue-wait interval: the
    /// admission time is only known to be interesting once the worker
    /// picks the request up.
    pub fn record_span_at(
        &self,
        name: &str,
        cat: &str,
        start: Instant,
        end: Instant,
        args: &[(&str, String)],
    ) {
        let t0 = self.inner.t0;
        let ts_us = start.saturating_duration_since(t0).as_secs_f64() * 1e6;
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        let ev = TraceEvent {
            id: self.next_id(),
            parent: Self::parent_of_new_event(),
            tid: self.register_thread(),
            name: name.to_string(),
            cat: cat.to_string(),
            track: Track::Host,
            ts_us,
            dur_us,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.push_event(ev);
    }

    /// Monotonically increasing counter, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = {
            let mut map = lock(&self.inner.counters);
            Arc::clone(map.entry(name.to_string()).or_default())
        };
        Counter { cell }
    }

    /// Log-bucketed histogram, created on first use. All histograms
    /// share one fixed √2 bucket grid (see [`HistogramSnapshot`]), so snapshots merge
    /// exactly across threads and sessions.
    pub fn histogram(&self, name: &str) -> Histogram {
        let cell = {
            let mut map = lock(&self.inner.hists);
            Arc::clone(map.entry(name.to_string()).or_default())
        };
        Histogram { cell }
    }

    /// Last-value / max gauge, created on first use (f64-valued).
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = {
            let mut map = lock(&self.inner.gauges);
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
            )
        };
        Gauge { cell }
    }

    /// Snapshot the session (drains this thread's buffer first).
    pub fn report(&self) -> TraceReport {
        flush_thread_buffer();
        let events = lock(&self.inner.sink).events.clone();
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&self.inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = lock(&self.inner.hists)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let threads = lock(&self.inner.threads).clone();
        TraceReport {
            events,
            counters,
            gauges,
            histograms,
            threads,
        }
    }
}

/// Keeps a trace on the thread's active stack; see [`Trace::activate`].
pub struct ActiveGuard {
    _priv: (),
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        TLS.with(|tls| {
            tls.borrow_mut().active.pop();
        });
        flush_thread_buffer();
    }
}

/// RAII host span; records a [`TraceEvent`] when dropped.
pub struct Span {
    trace: Trace,
    id: u64,
    parent: u64,
    tid: u64,
    name: String,
    args: Vec<(String, String)>,
    start: Instant,
}

impl Span {
    /// Attach an annotation after creation.
    pub fn arg(&mut self, key: &str, value: impl std::fmt::Display) {
        self.args.push((key.to_string(), value.to_string()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(pos) = tls.open_spans.iter().rposition(|&s| s == self.id) {
                tls.open_spans.remove(pos);
            }
        });
        let ts_us = self.start.duration_since(self.trace.inner.t0).as_secs_f64() * 1e6;
        let dur_us = self.start.elapsed().as_secs_f64() * 1e6;
        let ev = TraceEvent {
            id: self.id,
            parent: self.parent,
            tid: self.tid,
            name: std::mem::take(&mut self.name),
            cat: "host".to_string(),
            track: Track::Host,
            ts_us,
            dur_us,
            args: std::mem::take(&mut self.args),
        };
        self.trace.push_event(ev);
    }
}

/// Open a host span on the thread's current trace (no-op without one).
///
/// ```
/// use nufft_trace::{span, Trace};
/// let trace = Trace::new();
/// let _on = trace.activate();
/// {
///     let _s = span!("spread", dim = 3, method = "Sm");
///     // ... traced work ...
/// }
/// assert_eq!(trace.report().events.len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Trace::current().map(|t| t.span($name))
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Trace::current().map(|t| {
            t.span_with($name, &[$((stringify!($key), format!("{}", $value))),+])
        })
    };
}

/// Handle to a named atomic counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicI64>,
}

impl Counter {
    pub fn add(&self, v: i64) {
        self.cell.fetch_add(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a named f64 gauge (atomic bit-cast storage).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if larger (compare-and-swap loop).
    pub fn max(&self, v: f64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.cell.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Immutable snapshot of a [`Trace`]: events plus counter, gauge, and
/// histogram values and the thread-name table.
#[derive(Clone, Debug)]
pub struct TraceReport {
    pub events: Vec<TraceEvent>,
    pub counters: BTreeMap<String, i64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Thread ordinal → name for every thread that recorded an event.
    pub threads: BTreeMap<u64, String>,
}

impl TraceReport {
    /// Chrome trace-event JSON (see [`chrome`]).
    pub fn chrome_json(&self) -> String {
        chrome::chrome_json(self)
    }

    /// Prometheus-style text dump (see [`prom`]).
    pub fn prometheus(&self) -> String {
        prom::prometheus(self)
    }

    /// Total busy time (seconds) per event name on the simulated GPU
    /// engine lanes (compute + transfers; the `Plan` stage lane is
    /// excluded to avoid double counting), sorted descending.
    pub fn device_busy_by_name(&self) -> Vec<(String, f64)> {
        let mut agg: BTreeMap<&str, f64> = BTreeMap::new();
        for ev in &self.events {
            match ev.track {
                Track::Device(Lane::Plan) | Track::Host => continue,
                Track::Device(_) => {
                    *agg.entry(ev.name.as_str()).or_default() += ev.dur_us * 1e-6;
                }
            }
        }
        let mut out: Vec<(String, f64)> =
            agg.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Events (host or device, spans or instants) with exactly this
    /// name, in record order. Useful for asserting a code path ran — or
    /// didn't: a served cache hit shows zero `"plan.build"` spans.
    pub fn spans_named(&self, name: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|ev| ev.name == name).collect()
    }

    /// Total duration (seconds) of device-lane spans whose name matches
    /// `name` exactly (e.g. the plan's `"stage.spread"` stage spans).
    pub fn device_span_total(&self, name: &str) -> f64 {
        self.events
            .iter()
            .filter(|ev| matches!(ev.track, Track::Device(_)) && ev.name == name)
            .map(|ev| ev.dur_us * 1e-6)
            .sum()
    }

    /// Map every event correlated with a request to that request's id.
    ///
    /// An event is correlated when it carries a
    /// [`REQUEST_ID_ARG`]`= <id>` annotation directly, or when any
    /// ancestor (via `parent` links) does — so the plan lifecycle spans
    /// and the device-lane kernels recorded *inside* a serve span
    /// inherit the request id without every layer knowing about
    /// requests. Returns event-id → request-id.
    pub fn request_correlation(&self) -> BTreeMap<u64, u64> {
        let mut map: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in &self.events {
            if let Some(rid) = request_id_of(ev) {
                map.insert(ev.id, rid);
            }
        }
        // propagate down parent links to a fixpoint (events are recorded
        // child-before-parent, so one pass is not enough)
        loop {
            let mut changed = false;
            for ev in &self.events {
                if !map.contains_key(&ev.id) {
                    if let Some(&rid) = map.get(&ev.parent) {
                        map.insert(ev.id, rid);
                        changed = true;
                    }
                }
            }
            if !changed {
                return map;
            }
        }
    }

    /// Reconstruct one request's full lifecycle: every event correlated
    /// with request `id` (see [`TraceReport::request_correlation`]),
    /// host events first in timestamp order, then device-lane events in
    /// simulated-time order — admission → queue-wait → execution down to
    /// the kernel lanes. Empty when the id was never traced.
    pub fn request_timeline(&self, id: u64) -> Vec<&TraceEvent> {
        let corr = self.request_correlation();
        let mut out: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|ev| corr.get(&ev.id) == Some(&id))
            .collect();
        out.sort_by(|a, b| {
            let ka = matches!(a.track, Track::Device(_));
            let kb = matches!(b.track, Track::Device(_));
            ka.cmp(&kb)
                .then(a.ts_us.total_cmp(&b.ts_us))
                .then(a.id.cmp(&b.id))
        });
        out
    }
}

/// Annotation key marking an event as belonging to one served request;
/// the value is the decimal request id. Written by `nufft-serve`, read
/// by [`TraceReport::request_timeline`] and the Chrome exporter's flow
/// events.
pub const REQUEST_ID_ARG: &str = "request_id";

/// The request id an event carries directly, if any.
pub fn request_id_of(ev: &TraceEvent) -> Option<u64> {
    ev.args
        .iter()
        .find(|(k, _)| k == REQUEST_ID_ARG)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let trace = Trace::new();
        let _on = trace.activate();
        {
            let _outer = span!("outer", layer = "test");
            let _inner = span!("inner");
        }
        let report = trace.report();
        assert_eq!(report.events.len(), 2);
        // inner drops first, so it is recorded first
        let inner = &report.events[0];
        let outer = &report.events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.args, vec![("layer".to_string(), "test".to_string())]);
    }

    #[test]
    fn span_macro_is_noop_without_active_trace() {
        let s = span!("orphan");
        assert!(s.is_none());
    }

    #[test]
    fn device_spans_carry_simulated_time() {
        let trace = Trace::new();
        trace.device_span(
            Lane::Compute,
            "spread_SM",
            "kernel",
            1.5e-3,
            2.5e-3,
            &[("blocks", "64".to_string())],
        );
        let report = trace.report();
        let ev = &report.events[0];
        assert_eq!(ev.track, Track::Device(Lane::Compute));
        assert!((ev.ts_us - 1500.0).abs() < 1e-9);
        assert!((ev.dur_us - 2500.0).abs() < 1e-9);
        let busy = report.device_busy_by_name();
        assert_eq!(busy[0].0, "spread_SM");
        assert!((busy[0].1 - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn device_span_nests_under_open_host_span() {
        let trace = Trace::new();
        let _on = trace.activate();
        let outer = trace.span("host-stage");
        trace.device_span(Lane::Compute, "kernel", "kernel", 0.0, 1.0, &[]);
        let outer_id = outer.id;
        drop(outer);
        let report = trace.report();
        let dev = report.events.iter().find(|e| e.name == "kernel").unwrap();
        assert_eq!(dev.parent, outer_id);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let trace = Trace::new();
        trace.counter("bins.points").add(100);
        trace.counter("bins.points").add(23);
        trace.gauge("imbalance").max(2.0);
        trace.gauge("imbalance").max(1.0); // lower: ignored
        let r = trace.report();
        assert_eq!(r.counters["bins.points"], 123);
        assert_eq!(r.gauges["imbalance"], 2.0);
    }

    #[test]
    fn clones_share_one_sink() {
        let trace = Trace::new();
        let clone = trace.clone();
        assert!(trace.same_session(&clone));
        clone.device_span(Lane::Alloc, "alloc:x", "alloc", 0.0, 1e-6, &[]);
        assert_eq!(trace.report().events.len(), 1);
    }

    #[test]
    fn thread_buffer_drains_at_flush_threshold() {
        let trace = Trace::new();
        let _on = trace.activate();
        // hold a span open so pushes don't auto-drain on empty stack
        let _outer = trace.span("outer");
        for i in 0..(BUF_FLUSH_LEN + 10) {
            trace.device_span(Lane::Compute, &format!("k{i}"), "kernel", 0.0, 1.0, &[]);
        }
        // the threshold drain must have moved at least one batch already
        assert!(trace.inner.sink.lock().unwrap().events.len() >= BUF_FLUSH_LEN);
    }

    #[test]
    fn spans_named_filters_exactly() {
        let trace = Trace::new();
        let _on = trace.activate();
        drop(trace.span("plan.build"));
        drop(trace.span("plan.execute"));
        drop(trace.span("plan.build"));
        let report = trace.report();
        assert_eq!(report.spans_named("plan.build").len(), 2);
        assert_eq!(report.spans_named("plan.execute").len(), 1);
        assert!(report.spans_named("plan.setpts").is_empty());
    }

    #[test]
    fn histograms_record_and_snapshot() {
        let trace = Trace::new();
        trace.histogram("serve.latency").observe(2e-3);
        trace.histogram("serve.latency").observe(8e-3);
        let r = trace.report();
        let h = &r.histograms["serve.latency"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2e-3);
        assert_eq!(h.max, 8e-3);
        assert!(h.p50().unwrap() <= h.p99().unwrap());
    }

    #[test]
    fn events_carry_thread_ids_and_names() {
        let trace = Trace::new();
        drop(trace.span("main-side"));
        let t2 = trace.clone();
        std::thread::Builder::new()
            .name("obs-worker".into())
            .spawn(move || drop(t2.span("worker-side")))
            .unwrap()
            .join()
            .unwrap();
        let r = trace.report();
        let main_ev = r.spans_named("main-side")[0];
        let worker_ev = r.spans_named("worker-side")[0];
        assert_ne!(main_ev.tid, 0);
        assert_ne!(main_ev.tid, worker_ev.tid);
        assert_eq!(r.threads[&worker_ev.tid], "obs-worker");
    }

    #[test]
    fn record_span_at_uses_explicit_interval() {
        let trace = Trace::new();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let end = Instant::now();
        trace.record_span_at("serve.queue", "serve", start, end, &[]);
        let r = trace.report();
        let ev = r.spans_named("serve.queue")[0];
        assert_eq!(ev.track, Track::Host);
        assert!(ev.dur_us >= 1_000.0, "dur={}", ev.dur_us);
    }

    #[test]
    fn request_timeline_follows_parent_links() {
        let trace = Trace::new();
        let _on = trace.activate();
        {
            let _req = trace.span_with("serve.execute", &[(REQUEST_ID_ARG, "42".to_string())]);
            let _inner = trace.span("plan.execute");
            trace.device_span(Lane::Compute, "spread_SM", "kernel", 0.0, 1e-3, &[]);
        }
        drop(trace.span("unrelated"));
        let r = trace.report();
        let tl = r.request_timeline(42);
        let names: Vec<&str> = tl.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["serve.execute", "plan.execute", "spread_SM"]);
        assert!(r.request_timeline(43).is_empty());
        let corr = r.request_correlation();
        assert_eq!(corr.len(), 3);
        assert!(corr.values().all(|&rid| rid == 42));
    }

    #[test]
    fn report_snapshot_is_stable() {
        let trace = Trace::new();
        trace.device_span(Lane::Compute, "a", "kernel", 0.0, 1.0, &[]);
        let r1 = trace.report();
        trace.device_span(Lane::Compute, "b", "kernel", 1.0, 1.0, &[]);
        assert_eq!(r1.events.len(), 1);
        assert_eq!(trace.report().events.len(), 2);
    }
}
