//! Prometheus text-exposition exporter.
//!
//! Renders the counter, gauge, and histogram snapshots of a
//! [`TraceReport`] in the Prometheus exposition text format: a
//! `# HELP` and `# TYPE` header per metric family followed by its
//! samples. Metric names are sanitised to the
//! `[a-zA-Z_][a-zA-Z0-9_]*` charset — dots and dashes become
//! underscores — so `bins.nonempty` exports as `bins_nonempty`; label
//! *values* keep their full charset via backslash escaping
//! ([`escape_label`]).
//!
//! Histograms follow the native Prometheus histogram convention:
//! cumulative `name_bucket{le="<bound>"}` samples (monotone
//! non-decreasing, terminated by `le="+Inf"` equal to `name_count`)
//! plus `name_sum` and `name_count`. Bucket bounds are the fixed √2
//! grid of [`crate::Histogram`].

use crate::{HistogramSnapshot, TraceReport};
use std::fmt::Write;

/// Sanitise a metric name for the Prometheus text format.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped inside the quotes.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a float sample value (Prometheus accepts `NaN`/`+Inf`/`-Inf`
/// spellings).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn help_line(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Specific HELP text for the workspace's well-known metric families,
/// keyed by the *raw* (pre-sanitisation) metric name. Families not
/// listed here fall back to a generic kind-based description, so the
/// export never fails on a new metric — but operator-facing families
/// (overload, breaker, and supervision signals especially) should be
/// registered here as they are added.
pub fn help_for(name: &str) -> Option<&'static str> {
    Some(match name {
        // serving throughput
        "serve.accepted" => "requests admitted to the serve queue",
        "serve.rejected" => "requests refused with QueueFull at admission",
        "serve.completed" => "requests completed successfully",
        "serve.failed" => "requests resolved with a typed error",
        "serve.batches" => "execute_many launches issued by the serve worker",
        "serve.coalesced" => "requests that shared a launch with at least one other request",
        // plan cache
        "serve.cache_hit" => "plan-cache lookups served without building a plan",
        "serve.cache_miss" => "plan-cache lookups that built a plan",
        "serve.cache_evict" => "plans evicted by LRU capacity pressure",
        "serve.setpts_reuse" => "groups that reused the plan's already-set points",
        // overload containment
        "serve.shed" => "requests refused early by the load-shed controller (Overloaded)",
        "serve.deadline_exceeded" => {
            "requests resolved DeadlineExceeded at admission, dequeue, or a chunk boundary"
        }
        "serve.cancelled" => "requests resolved Cancelled before execution started",
        // fault containment
        "serve.quarantine" => "cached plans evicted after a persistent device fault",
        "serve.breaker_open" => "circuit-breaker open transitions (closed/half-open to open)",
        "serve.breaker_fastfail" => "requests fast-failed by an open circuit breaker",
        "serve.brownout" => "requests served degraded (method override or CPU fallback)",
        "serve.breaker_state" => "circuit breakers currently open or half-open",
        // supervision
        "serve.worker_panic" => "serve worker panics caught by the supervisor",
        "serve.worker_respawn" => "serve worker respawns performed by the supervisor",
        // queue gauges
        "serve.queue_depth" => "requests queued at the last accept or sweep",
        "serve.queue_peak" => "deepest the serve queue has been",
        // device-fault recovery (plan layer)
        "recovery.retries" => "device-fault retries attempted by the recovery layer",
        "recovery.recovered" => "device faults absorbed by bounded retry",
        "recovery.unrecovered" => "device faults that exhausted the retry budget",
        _ => return None,
    })
}

/// Render one histogram family (already-sanitised `name`).
fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    help_line(
        out,
        name,
        "histogram",
        "log-bucketed distribution (nufft-trace, \u{221a}2 bucket grid)",
    );
    let cum = h.cumulative();
    let mut last = 0u64;
    for (i, &c) in cum.iter().enumerate().take(crate::BUCKETS) {
        // skip interior buckets that add nothing, but keep the first,
        // any count-changing bound, and always close with +Inf below —
        // cumulative values stay monotone by construction
        if c != last || i == 0 {
            let le = escape_label(&fmt_value(crate::bucket_upper_bound(i)));
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {c}");
            last = c;
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render counters, gauges, and histograms as exposition text.
pub fn prometheus(report: &TraceReport) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let help = help_for(name).unwrap_or("cumulative count (nufft-trace)");
        let name = sanitize(name);
        help_line(&mut out, &name, "counter", help);
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &report.gauges {
        let help = help_for(name).unwrap_or("last-value gauge (nufft-trace)");
        let name = sanitize(name);
        help_line(&mut out, &name, "gauge", help);
        let _ = writeln!(out, "{name} {}", fmt_value(*value));
    }
    for (name, h) in &report.histograms {
        let name = sanitize(name);
        render_histogram(&mut out, &name, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("bins.nonempty"), "bins_nonempty");
        assert_eq!(sanitize("gpu-sim/occupancy"), "gpu_sim_occupancy");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize("x9"), "x9");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn renders_counters_and_gauges_with_help_and_type() {
        let trace = Trace::new();
        trace.counter("bins.total").add(64);
        trace.gauge("bins.imbalance").set(2.5);
        let text = prometheus(&trace.report());
        assert!(text.contains("# HELP bins_total "));
        assert!(text.contains("# TYPE bins_total counter\nbins_total 64\n"));
        assert!(text.contains("# HELP bins_imbalance "));
        assert!(text.contains("# TYPE bins_imbalance gauge\nbins_imbalance 2.5\n"));
    }

    #[test]
    fn non_finite_gauges_use_prometheus_spellings() {
        let trace = Trace::new();
        trace.gauge("g.nan").set(f64::NAN);
        trace.gauge("g.inf").set(f64::INFINITY);
        let text = prometheus(&trace.report());
        assert!(text.contains("g_nan NaN\n"));
        assert!(text.contains("g_inf +Inf\n"));
    }

    #[test]
    fn empty_report_renders_empty() {
        let trace = Trace::new();
        assert_eq!(prometheus(&trace.report()), "");
    }

    #[test]
    fn overload_families_export_specific_help_text() {
        let trace = Trace::new();
        trace.counter("serve.shed").add(3);
        trace.counter("serve.deadline_exceeded").add(1);
        trace.counter("serve.breaker_fastfail").add(2);
        trace.counter("serve.worker_respawn").add(1);
        trace.gauge("serve.breaker_state").set(1.0);
        let text = prometheus(&trace.report());
        // every family: a non-generic HELP line, the right TYPE, a sample
        assert!(text.contains("# HELP serve_shed requests refused early by the load-shed"));
        assert!(text.contains("# TYPE serve_shed counter\nserve_shed 3\n"));
        assert!(text.contains("# HELP serve_deadline_exceeded requests resolved DeadlineExceeded"));
        assert!(
            text.contains("# TYPE serve_deadline_exceeded counter\nserve_deadline_exceeded 1\n")
        );
        assert!(text.contains("# HELP serve_breaker_fastfail "));
        assert!(text.contains("serve_breaker_fastfail 2\n"));
        assert!(text.contains("# HELP serve_worker_respawn serve worker respawns"));
        assert!(text.contains("# HELP serve_breaker_state circuit breakers currently open"));
        assert!(text.contains("# TYPE serve_breaker_state gauge\nserve_breaker_state 1\n"));
    }

    #[test]
    fn unknown_families_fall_back_to_generic_help() {
        assert!(help_for("serve.some_future_metric").is_none());
        assert_eq!(
            help_for("serve.shed"),
            Some("requests refused early by the load-shed controller (Overloaded)")
        );
        let trace = Trace::new();
        trace.counter("custom.thing").add(1);
        let text = prometheus(&trace.report());
        assert!(text.contains("# HELP custom_thing cumulative count (nufft-trace)"));
    }

    /// Exposition-format conformance over the full serve vocabulary:
    /// every emitted family must carry exactly one HELP and one TYPE
    /// line, in that order, with the sample lines following.
    #[test]
    fn every_family_has_exactly_one_help_and_type_header() {
        let trace = Trace::new();
        for c in [
            "serve.accepted",
            "serve.shed",
            "serve.deadline_exceeded",
            "serve.cancelled",
            "serve.quarantine",
            "serve.breaker_open",
            "serve.breaker_fastfail",
            "serve.brownout",
            "serve.worker_panic",
            "serve.worker_respawn",
            "recovery.retries",
        ] {
            trace.counter(c).add(1);
        }
        trace.gauge("serve.breaker_state").set(0.0);
        trace.histogram("serve.latency").observe(0.01);
        let text = prometheus(&trace.report());
        let mut families: std::collections::BTreeMap<&str, (u32, u32)> = Default::default();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                families
                    .entry(rest.split(' ').next().unwrap())
                    .or_default()
                    .0 += 1;
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                families
                    .entry(rest.split(' ').next().unwrap())
                    .or_default()
                    .1 += 1;
            }
        }
        assert!(families.len() >= 13, "families: {}", families.len());
        for (name, (helps, types)) in families {
            assert_eq!(helps, 1, "{name} HELP lines");
            assert_eq!(types, 1, "{name} TYPE lines");
        }
    }

    /// Parse every `name_bucket{le="..."} v` line of one family back out
    /// as `(le, cumulative)` pairs, in emission order.
    fn parse_buckets(text: &str, family: &str) -> Vec<(String, u64)> {
        let prefix = format!("{family}_bucket{{le=\"");
        text.lines()
            .filter_map(|l| {
                let rest = l.strip_prefix(&prefix)?;
                let (le, v) = rest.split_once("\"} ")?;
                Some((le.to_string(), v.parse().ok()?))
            })
            .collect()
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_and_closed_by_inf() {
        let trace = Trace::new();
        let h = trace.histogram("serve.latency");
        for v in [1e-5, 2e-4, 2e-4, 3e-3, 0.5, 1e9] {
            h.observe(v);
        }
        let text = prometheus(&trace.report());
        assert!(text.contains("# TYPE serve_latency histogram"));
        let buckets = parse_buckets(&text, "serve_latency");
        assert!(buckets.len() >= 5, "buckets: {buckets:?}");
        // monotone non-decreasing cumulative counts
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        // bounds strictly increase (ignoring the final +Inf)
        let bounds: Vec<f64> = buckets
            .iter()
            .filter(|(le, _)| le != "+Inf")
            .map(|(le, _)| le.parse().unwrap())
            .collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        // +Inf closes the series at the total count
        let (last_le, last_c) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf");
        assert_eq!(*last_c, 6);
        assert!(text.contains("serve_latency_count 6\n"));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("serve_latency_sum "))
            .unwrap();
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 1e9 - 0.503_41).abs() / 1e9 < 1e-12);
    }

    #[test]
    fn empty_histogram_renders_zeroed_family() {
        let trace = Trace::new();
        let _ = trace.histogram("h.empty");
        let text = prometheus(&trace.report());
        assert!(text.contains("# TYPE h_empty histogram"));
        assert!(text.contains("h_empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("h_empty_count 0\n"));
        assert!(text.contains("h_empty_sum 0\n"));
    }
}
