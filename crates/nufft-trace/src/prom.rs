//! Prometheus-style text exporter.
//!
//! Renders the counter and gauge snapshots of a [`TraceReport`] in the
//! Prometheus exposition text format (`# TYPE` lines followed by
//! `name value` samples). Metric names are sanitised to the
//! `[a-zA-Z_][a-zA-Z0-9_]*` charset — dots and dashes become
//! underscores — so `bins.nonempty` exports as `bins_nonempty`.

use crate::TraceReport;
use std::fmt::Write;

/// Sanitise a metric name for the Prometheus text format.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render counters and gauges as Prometheus exposition text.
pub fn prometheus(report: &TraceReport) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &report.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        if value.is_finite() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name} NaN");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("bins.nonempty"), "bins_nonempty");
        assert_eq!(sanitize("gpu-sim/occupancy"), "gpu_sim_occupancy");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize("x9"), "x9");
    }

    #[test]
    fn renders_counters_and_gauges() {
        let trace = Trace::new();
        trace.counter("bins.total").add(64);
        trace.gauge("bins.imbalance").set(2.5);
        let text = prometheus(&trace.report());
        assert!(text.contains("# TYPE bins_total counter\nbins_total 64\n"));
        assert!(text.contains("# TYPE bins_imbalance gauge\nbins_imbalance 2.5\n"));
    }

    #[test]
    fn empty_report_renders_empty() {
        let trace = Trace::new();
        assert_eq!(prometheus(&trace.report()), "");
    }
}
