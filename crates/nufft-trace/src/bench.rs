//! The wall-clock bench trajectory: `BENCH_<date>.json` schema,
//! validator, and regression comparator.
//!
//! Simulated-time benches prove the cost *model*; the trajectory file
//! records what the host actually spent, so a future "make it faster"
//! PR can show a measured win (ROADMAP item 3). Each run of the
//! `bench_smoke` harness writes one schema-versioned JSON file:
//!
//! ```json
//! {
//!   "schema": "nufft-bench/v1",
//!   "created_unix": 1754611200,
//!   "label": "bench-smoke",
//!   "rows": [ {"name": "type1_2d_sm_f32", "wall_s": 0.0123, "reps": 3} ],
//!   "histograms": {
//!     "serve.latency": {"count": 60, "sum": 0.9,
//!                        "p50": 0.01, "p90": 0.02, "p99": 0.05, "p999": 0.05}
//!   }
//! }
//! ```
//!
//! `rows` are named wall-clock measurements (best-of-`reps`, seconds);
//! `histograms` are quantile summaries lifted from a
//! [`crate::TraceReport`]. [`BenchReport::from_json`] validates the
//! whole shape (schema tag, field types, finite non-negative times,
//! unique row names), and [`compare`] flags rows slower than the prior
//! file by more than a tolerance — the regression gate in
//! `scripts/check.sh`'s bench-smoke tier.

use crate::chrome::escape;
use crate::json::Json;
use crate::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag every trajectory file must carry.
pub const SCHEMA: &str = "nufft-bench/v1";

/// One named wall-clock measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    pub name: String,
    /// Best-of-`reps` wall time, seconds.
    pub wall_s: f64,
    pub reps: u64,
}

/// Quantile summary of one histogram, as persisted in the trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
}

impl HistSummary {
    /// Summarise a live snapshot; `None` when it holds no samples.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Option<HistSummary> {
        Some(HistSummary {
            count: s.count,
            sum: s.sum,
            p50: s.p50()?,
            p90: s.p90()?,
            p99: s.p99()?,
            p999: s.p999()?,
        })
    }
}

/// One `BENCH_<date>.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Unix seconds the report was created (whole file is a snapshot).
    pub created_unix: u64,
    /// Free-form provenance tag (e.g. `bench-smoke`).
    pub label: String,
    pub rows: Vec<BenchRow>,
    pub histograms: BTreeMap<String, HistSummary>,
}

impl BenchReport {
    pub fn new(label: &str, created_unix: u64) -> Self {
        BenchReport {
            created_unix,
            label: label.to_string(),
            rows: Vec::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Append one measurement row.
    pub fn push_row(&mut self, name: &str, wall_s: f64, reps: u64) {
        self.rows.push(BenchRow {
            name: name.to_string(),
            wall_s,
            reps,
        });
    }

    /// Lift every non-empty histogram of a trace report whose name
    /// passes `keep` into the summary table.
    pub fn add_histograms(&mut self, report: &crate::TraceReport, keep: impl Fn(&str) -> bool) {
        for (name, snap) in &report.histograms {
            if !keep(name) {
                continue;
            }
            if let Some(sum) = HistSummary::from_snapshot(snap) {
                self.histograms.insert(name.clone(), sum);
            }
        }
    }

    /// Serialise to the schema's JSON text.
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let _ = write!(
                rows,
                "{{\"name\":\"{}\",\"wall_s\":{},\"reps\":{}}}",
                escape(&r.name),
                r.wall_s,
                r.reps
            );
        }
        let mut hists = String::new();
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                hists.push(',');
            }
            let _ = write!(
                hists,
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                escape(name),
                h.count,
                h.sum,
                h.p50,
                h.p90,
                h.p99,
                h.p999
            );
        }
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"created_unix\":{},\"label\":\"{}\",\
             \"rows\":[{rows}],\"histograms\":{{{hists}}}}}",
            self.created_unix,
            escape(&self.label),
        )
    }

    /// Parse and validate a trajectory file. Every structural or type
    /// defect is an `Err` with a human-readable reason — the schema
    /// validator the bench-smoke tier runs on its own output.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing string field 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("schema '{schema}' != '{SCHEMA}'"));
        }
        let created = doc
            .get("created_unix")
            .and_then(Json::as_f64)
            .ok_or("missing numeric field 'created_unix'")?;
        if created < 0.0 || created.fract() != 0.0 {
            return Err(format!("created_unix {created} is not a whole count"));
        }
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or("missing string field 'label'")?
            .to_string();
        let rows_json = doc
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("missing array field 'rows'")?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, r) in rows_json.iter().enumerate() {
            let name = r
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("row {i}: missing string 'name'"))?;
            let wall_s = r
                .get("wall_s")
                .and_then(Json::as_f64)
                .ok_or(format!("row {i} ({name}): missing numeric 'wall_s'"))?;
            if !wall_s.is_finite() || wall_s < 0.0 {
                return Err(format!("row {i} ({name}): wall_s {wall_s} invalid"));
            }
            let reps = r
                .get("reps")
                .and_then(Json::as_f64)
                .ok_or(format!("row {i} ({name}): missing numeric 'reps'"))?;
            if reps < 1.0 || reps.fract() != 0.0 {
                return Err(format!("row {i} ({name}): reps {reps} invalid"));
            }
            if rows.iter().any(|r: &BenchRow| r.name == name) {
                return Err(format!("duplicate row name '{name}'"));
            }
            rows.push(BenchRow {
                name: name.to_string(),
                wall_s,
                reps: reps as u64,
            });
        }
        let hists_json = doc
            .get("histograms")
            .and_then(Json::as_object)
            .ok_or("missing object field 'histograms'")?;
        let mut histograms = BTreeMap::new();
        for (name, h) in hists_json {
            let field = |key: &str| -> Result<f64, String> {
                h.get(key)
                    .and_then(Json::as_f64)
                    .filter(|v| v.is_finite())
                    .ok_or(format!("histogram '{name}': missing finite '{key}'"))
            };
            let count = field("count")?;
            if count < 0.0 || count.fract() != 0.0 {
                return Err(format!("histogram '{name}': count {count} invalid"));
            }
            let summary = HistSummary {
                count: count as u64,
                sum: field("sum")?,
                p50: field("p50")?,
                p90: field("p90")?,
                p99: field("p99")?,
                p999: field("p999")?,
            };
            if summary.p50 > summary.p99 {
                return Err(format!("histogram '{name}': p50 > p99"));
            }
            histograms.insert(name.clone(), summary);
        }
        Ok(BenchReport {
            created_unix: created as u64,
            label,
            rows,
            histograms,
        })
    }
}

/// One row that got slower than the tolerance allows.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    pub name: String,
    pub prev_s: f64,
    pub cur_s: f64,
    /// `cur / prev` (always > 1 + tolerance).
    pub ratio: f64,
}

/// Compare a current report against the prior trajectory point: every
/// row present in both whose wall time grew by more than `tolerance`
/// (e.g. `0.15` = +15%) is returned as a [`Regression`], sorted worst
/// first. Rows only one side has are ignored — renames and new benches
/// are not regressions. Sub-millisecond rows are skipped as noise.
pub fn compare(prev: &BenchReport, cur: &BenchReport, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for c in &cur.rows {
        let Some(p) = prev.rows.iter().find(|p| p.name == c.name) else {
            continue;
        };
        if p.wall_s < 1e-3 || p.wall_s <= 0.0 {
            continue;
        }
        let ratio = c.wall_s / p.wall_s;
        if ratio > 1.0 + tolerance {
            out.push(Regression {
                name: c.name.clone(),
                prev_s: p.wall_s,
                cur_s: c.wall_s,
                ratio,
            });
        }
    }
    out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("bench-smoke", 1_754_611_200);
        r.push_row("type1_2d_sm_f32", 0.0123, 3);
        r.push_row("serve_burst", 0.44, 1);
        let trace = Trace::new();
        for i in 1..=20 {
            trace
                .histogram("serve.latency")
                .observe(1e-4 * f64::from(i));
        }
        r.add_histograms(&trace.report(), |n| n.starts_with("serve."));
        r
    }

    #[test]
    fn round_trips_through_json() {
        let r = sample();
        let text = r.to_json();
        let back = BenchReport::from_json(&text).expect("round trip");
        assert_eq!(back, r);
        assert!(back.histograms.contains_key("serve.latency"));
        assert_eq!(back.histograms["serve.latency"].count, 20);
    }

    #[test]
    fn validator_rejects_defects() {
        let good = sample().to_json();
        assert!(BenchReport::from_json(&good).is_ok());
        for (mutation, why) in [
            (good.replace("nufft-bench/v1", "nufft-bench/v0"), "schema"),
            (good.replace("\"wall_s\":0.0123", "\"wall_s\":-1"), "wall_s"),
            (
                good.replace("\"wall_s\":0.0123", "\"wall_s\":\"fast\""),
                "type",
            ),
            (good.replace("\"reps\":3", "\"reps\":0"), "reps"),
            (
                good.replace("serve_burst", "type1_2d_sm_f32"),
                "duplicate name",
            ),
            (good.replace("\"rows\"", "\"rowz\""), "rows key"),
            ("{}".to_string(), "empty"),
            ("not json".to_string(), "not json"),
        ] {
            assert!(BenchReport::from_json(&mutation).is_err(), "{why}");
        }
    }

    #[test]
    fn comparator_flags_only_real_regressions() {
        let mut prev = BenchReport::new("a", 1);
        prev.push_row("stable", 0.100, 3);
        prev.push_row("regressed", 0.100, 3);
        prev.push_row("improved", 0.100, 3);
        prev.push_row("removed", 0.100, 3);
        prev.push_row("tiny", 1e-5, 3);
        let mut cur = BenchReport::new("b", 2);
        cur.push_row("stable", 0.110, 3); // +10% < tolerance
        cur.push_row("regressed", 0.130, 3); // +30%
        cur.push_row("improved", 0.050, 3);
        cur.push_row("added", 9.0, 3);
        cur.push_row("tiny", 1e-3, 3); // 100x but sub-ms: noise
        let regs = compare(&prev, &cur, 0.15);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "regressed");
        assert!((regs[0].ratio - 1.3).abs() < 1e-12);
    }
}
