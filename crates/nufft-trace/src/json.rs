//! Minimal recursive-descent JSON parser.
//!
//! Exists so tests (and downstream tooling) can parse exported Chrome
//! traces back without pulling in serde — the crate is deliberately
//! dependency-free. Supports the full JSON grammar except `\u` surrogate
//! pairs are decoded individually (unpaired surrogates become
//! `char::REPLACEMENT_CHARACTER`).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            out.push(
                                char::from_u32(code as u32).unwrap_or(char::REPLACEMENT_CHARACTER),
                            );
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "non-utf8 \\u escape".to_string())?;
        let code = u16::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape '{text}'"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn decodes_escapes() {
        let doc = Json::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
