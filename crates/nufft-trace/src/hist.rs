//! Log-bucketed latency/size histograms.
//!
//! Counters and gauges answer "how much, in total"; the paper's
//! load-balance claim (and any SLO on the serving layer) is a claim
//! about *distributions* — a p99 that holds up under adversarial point
//! clustering. [`Histogram`] is the primitive for that: a fixed
//! geometric bucket grid shared by every instance, so per-thread and
//! per-session observations merge by plain element-wise addition, with
//! quantile estimation (p50/p90/p99/p999) by rank-walk over the
//! cumulative counts and geometric interpolation inside a bucket.
//!
//! Design points:
//!
//! * **Fixed global bucketing.** All histograms use the same `√2`-spaced
//!   upper bounds starting at [`BUCKET_MIN`] (64 finite buckets spanning
//!   ~9½ decades, 1 µs → ~50 min when observing seconds). Fixing the
//!   grid is what makes [`HistogramSnapshot::merge`] exact and
//!   deterministic: no rebinning, no per-instance configuration to
//!   disagree about.
//! * **Lock-free recording.** A histogram cell is an array of relaxed
//!   atomics (buckets, count) plus CAS loops for the float accumulators
//!   (sum, min, max). `observe` never takes a lock and never allocates,
//!   so it is safe on the serve worker's hot path.
//! * **Monotone quantiles.** For a fixed snapshot, `quantile(q)` is
//!   non-decreasing in `q` (ranks are monotone, bucket bounds are
//!   monotone, in-bucket interpolation is monotone), and estimates are
//!   clamped to the observed `[min, max]` envelope — so `p50 <= p99`
//!   always, and a single-sample histogram reports that sample exactly
//!   at every quantile.
//!
//! Non-finite observations are dropped (a NaN duration is an upstream
//! bug, not a data point); negative values clamp to the first bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of finite buckets (one more overflow bucket rides along).
pub const BUCKETS: usize = 64;

/// Upper bound of the first bucket. Chosen for seconds-valued
/// observations: bucket 0 is "at or under a microsecond".
pub const BUCKET_MIN: f64 = 1e-6;

/// Geometric growth factor between consecutive bucket bounds (√2, i.e.
/// two buckets per octave — ~±19% relative quantile error worst case).
pub const BUCKET_GROWTH: f64 = std::f64::consts::SQRT_2;

/// Upper bound of finite bucket `i`: `BUCKET_MIN * BUCKET_GROWTH^i`.
pub fn bucket_upper_bound(i: usize) -> f64 {
    BUCKET_MIN * BUCKET_GROWTH.powi(i as i32)
}

/// Index of the bucket a value lands in (`BUCKETS` = overflow).
fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v <= BUCKET_MIN {
        return 0;
    }
    // log_G(v / MIN) = 2 * log2(v / MIN) for G = √2; ceil picks the
    // first bound >= v. The tiny epsilon keeps exact bounds in their
    // own bucket despite log/pow round-trip error.
    let idx = (2.0 * (v / BUCKET_MIN).log2() - 1e-9).ceil();
    if idx >= BUCKETS as f64 {
        BUCKETS
    } else {
        idx.max(0.0) as usize
    }
}

/// Shared storage behind a [`Histogram`] handle (one per metric name).
pub(crate) struct HistCell {
    /// Finite buckets plus one overflow slot at index [`BUCKETS`].
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    /// f64 accumulators stored as bits, updated by CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

fn cas_f64(cell: &AtomicU64, fold: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = fold(f64::from_bits(cur));
        if next.to_bits() == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl HistCell {
    pub(crate) fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let v = v.max(0.0);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.sum_bits, |s| s + v);
        cas_f64(&self.min_bits, |m| m.min(v));
        cas_f64(&self.max_bits, |m| m.max(v));
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Handle to a named histogram in a [`crate::Trace`] session; cheap to
/// clone, records with [`Histogram::observe`].
#[derive(Clone)]
pub struct Histogram {
    pub(crate) cell: Arc<HistCell>,
}

impl Histogram {
    /// Record one observation. Non-finite values are dropped; negative
    /// values clamp into the first bucket.
    pub fn observe(&self, v: f64) {
        self.cell.observe(v);
    }

    /// Record a duration in seconds (convenience for span-shaped code).
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Point-in-time snapshot of this histogram alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

/// Immutable histogram state: per-bucket counts (last entry = overflow),
/// total count/sum, and the exact observed min/max envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// `BUCKETS + 1` entries; `buckets[BUCKETS]` is the overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`); `None` when
    /// empty. Exact for a single sample; otherwise bucket-resolution
    /// (±one √2 bucket), clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // the envelope ends are tracked exactly — no need to estimate
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // 1-based rank of the sample the quantile falls on.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                // geometric interpolation between the bucket's bounds
                // at the in-bucket rank fraction
                let lo = if i == 0 {
                    self.min.min(bucket_upper_bound(0))
                } else {
                    bucket_upper_bound(i - 1)
                };
                let hi = if i >= BUCKETS {
                    self.max.max(bucket_upper_bound(BUCKETS - 1))
                } else {
                    bucket_upper_bound(i)
                };
                let frac = (target - cum) as f64 / n as f64;
                let lo = lo.max(1e-12);
                let hi = hi.max(lo);
                let est = lo * (hi / lo).powf(frac);
                return Some(est.clamp(self.min, self.max));
            }
            cum += n;
        }
        // counts changed between loads in a racy snapshot; fall back to
        // the largest observation
        Some(self.max)
    }

    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Fold `other` into `self`. Exact (element-wise) because every
    /// histogram shares the same bucket grid; the result is independent
    /// of merge order for buckets/count/min/max (sums are f64 additions
    /// and commute up to rounding).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative count at or under each finite bucket bound, then the
    /// grand total — the Prometheus `le` series shape.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for &n in &self.buckets {
            cum += n;
            out.push(cum);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram {
            cell: Arc::new(HistCell::default()),
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = hist();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p999(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.cumulative().last(), Some(&0));
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let h = hist();
        h.observe(3.7e-3);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(3.7e-3), "q={q}");
        }
        assert_eq!(s.min, 3.7e-3);
        assert_eq!(s.max, 3.7e-3);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        // a value exactly on a bound stays in that bucket; epsilon above
        // goes to the next
        for i in 0..BUCKETS {
            let b = bucket_upper_bound(i);
            assert_eq!(bucket_of(b), i, "bound {i}");
            assert_eq!(bucket_of(b * 1.0001), i + 1, "just above bound {i}");
        }
    }

    #[test]
    fn extremes_saturate_into_edge_buckets() {
        let h = hist();
        h.observe(0.0); // clamp into bucket 0
        h.observe(-5.0); // negative clamps too
        h.observe(1e-12); // tiny
        h.observe(1e9); // way past the last bound: overflow bucket
        h.observe(f64::MAX);
        h.observe(f64::NAN); // dropped
        h.observe(f64::INFINITY); // dropped
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.buckets[BUCKETS], 2);
        // quantiles stay inside the observed envelope
        assert_eq!(s.quantile(0.0).unwrap(), 0.0);
        assert_eq!(s.quantile(1.0).unwrap(), f64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_ordered() {
        let h = hist();
        // three decades of spread
        for i in 1..=1000u32 {
            h.observe(1e-5 * f64::from(i));
        }
        let s = h.snapshot();
        let mut last = 0.0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!(v >= last, "quantile({q})={v} < {last}");
            last = v;
        }
        let p50 = s.p50().unwrap();
        let p99 = s.p99().unwrap();
        assert!(p50 < p99);
        // √2 buckets: estimates within ~±50% of the true order stats
        assert!((p50 / 5e-3 - 1.0).abs() < 0.5, "p50={p50}");
        assert!((p99 / 9.9e-3 - 1.0).abs() < 0.5, "p99={p99}");
    }

    #[test]
    fn merge_across_threads_is_deterministic() {
        // the same observations, split across 4 threads in two different
        // interleavings, must produce identical bucket state
        let run = |rotate: usize| {
            let h = hist();
            let vals: Vec<f64> = (1..=400u32).map(|i| 1e-6 * f64::from(i) * 7.3).collect();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let h = h.clone();
                    let chunk: Vec<f64> = vals[((t + rotate) % 4) * 100..]
                        .iter()
                        .take(100)
                        .copied()
                        .collect();
                    scope.spawn(move || {
                        for v in chunk {
                            h.observe(v);
                        }
                    });
                }
            });
            h.snapshot()
        };
        let a = run(0);
        let b = run(2);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.count, b.count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(a.quantile(0.99), b.quantile(0.99));
    }

    #[test]
    fn merge_equals_single_histogram() {
        let all = hist();
        let ha = hist();
        let hb = hist();
        for i in 1..=50u32 {
            let v = 3e-6 * f64::from(i) * f64::from(i);
            all.observe(v);
            if i % 2 == 0 {
                ha.observe(v);
            } else {
                hb.observe(v);
            }
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let want = all.snapshot();
        assert_eq!(merged.buckets, want.buckets);
        assert_eq!(merged.count, want.count);
        assert_eq!(merged.min, want.min);
        assert_eq!(merged.max, want.max);
        assert!((merged.sum - want.sum).abs() < 1e-12 * want.sum.abs());
    }

    #[test]
    fn cumulative_is_monotone_and_totals() {
        let h = hist();
        for v in [1e-6, 5e-4, 5e-4, 2e-2, 7e3] {
            h.observe(v);
        }
        let cum = h.snapshot().cumulative();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cum.last().unwrap(), 5);
    }
}
