//! Chrome trace-event JSON exporter.
//!
//! Produces the "JSON Array Format with metadata" flavour accepted by
//! `chrome://tracing` and Perfetto: a top-level object with a
//! `traceEvents` array of complete (`"ph": "X"`) events plus metadata
//! (`"ph": "M"`) events naming the processes and lanes. Two process
//! groups are emitted:
//!
//! * pid 1 — **host**: wall-clock spans from the [`crate::span!`] macro,
//!   one timeline row per recording OS thread, named from the thread's
//!   `std::thread::Builder` name (so the serve worker reads as
//!   `nufft-serve`, not a bare tid);
//! * pid 2 — **sim-gpu**: simulated-device time, one thread row per
//!   [`crate::Lane`] (plan stages, compute, H2D, D2H, alloc).
//!
//! Events correlated with a served request (a
//! [`crate::REQUEST_ID_ARG`] annotation, inherited down parent links)
//! additionally emit Chrome *flow* events (`"ph": "s"/"t"/"f"`, one
//! flow id per request), so Perfetto draws arrows from the serve span
//! through the plan stages down to the device kernel lanes.
//!
//! Counter and gauge snapshots ride along under the non-standard
//! `counters` / `gauges` keys, which trace viewers ignore but tests and
//! scripts can read back with [`crate::json`].

use crate::{Lane, TraceEvent, TraceReport, Track};
use std::collections::BTreeMap;
use std::fmt::Write;

const HOST_PID: u32 = 1;
const GPU_PID: u32 = 2;

fn lane_tid(lane: Lane) -> u64 {
    match lane {
        Lane::Plan => 1,
        Lane::Compute => 2,
        Lane::H2d => 3,
        Lane::D2h => 4,
        Lane::Alloc => 5,
    }
}

/// (pid, tid) a recorded event renders under.
fn placement(ev: &TraceEvent) -> (u32, u64) {
    match ev.track {
        Track::Host => (HOST_PID, ev.tid),
        Track::Device(lane) => (GPU_PID, lane_tid(lane)),
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a finite f64 for JSON (no NaN/Inf — clamped to 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn meta_event(pid: u32, tid: u64, name: &str, kind: &str) -> String {
    format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

fn complete_event(ev: &TraceEvent) -> String {
    let (pid, tid) = placement(ev);
    let mut args = format!("\"id\":{},\"parent\":{}", ev.id, ev.parent);
    for (k, v) in &ev.args {
        let _ = write!(args, ",\"{}\":\"{}\"", escape(k), escape(v));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
        escape(&ev.name),
        escape(&ev.cat),
        num(ev.ts_us),
        num(ev.dur_us),
    )
}

/// One flow event (`ph` ∈ s/t/f) tying request-correlated events
/// together under flow id `rid`.
fn flow_event(ev: &TraceEvent, rid: u64, ph: &str) -> String {
    let (pid, tid) = placement(ev);
    let bind = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
    format!(
        "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"{ph}\",\"id\":{rid},\
         \"pid\":{pid},\"tid\":{tid},\"ts\":{}{bind}}}",
        num(ev.ts_us),
    )
}

/// Flow events for every request: start at the first correlated event,
/// step through the rest, finish at the last (in lifecycle order, host
/// before device — the same order [`TraceReport::request_timeline`]
/// returns).
fn flow_events(report: &TraceReport) -> Vec<String> {
    let corr = report.request_correlation();
    let mut by_request: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in &report.events {
        if let Some(&rid) = corr.get(&ev.id) {
            by_request.entry(rid).or_default().push(ev);
        }
    }
    let mut out = Vec::new();
    for (rid, mut evs) in by_request {
        evs.sort_by(|a, b| {
            let ka = matches!(a.track, Track::Device(_));
            let kb = matches!(b.track, Track::Device(_));
            ka.cmp(&kb)
                .then(a.ts_us.total_cmp(&b.ts_us))
                .then(a.id.cmp(&b.id))
        });
        let last = evs.len() - 1;
        for (i, ev) in evs.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            out.push(flow_event(ev, rid, ph));
            if evs.len() == 1 {
                // a lone event still needs a finish to render
                out.push(flow_event(ev, rid, "f"));
            }
        }
    }
    out
}

/// Render a report as Chrome trace-event JSON.
pub fn chrome_json(report: &TraceReport) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(report.events.len() + 16);
    parts.push(meta_event(HOST_PID, 0, "host", "process_name"));
    // one named row per OS thread that recorded host events
    let mut host_tids: Vec<u64> = report
        .events
        .iter()
        .filter(|ev| ev.track == Track::Host)
        .map(|ev| ev.tid)
        .collect();
    host_tids.sort_unstable();
    host_tids.dedup();
    for tid in host_tids {
        let fallback = format!("thread-{tid}");
        let name = report.threads.get(&tid).unwrap_or(&fallback);
        parts.push(meta_event(HOST_PID, tid, name, "thread_name"));
    }
    parts.push(meta_event(GPU_PID, 0, "sim-gpu", "process_name"));
    for lane in [Lane::Plan, Lane::Compute, Lane::H2d, Lane::D2h, Lane::Alloc] {
        parts.push(meta_event(
            GPU_PID,
            lane_tid(lane),
            lane.label(),
            "thread_name",
        ));
    }
    parts.extend(report.events.iter().map(complete_event));
    parts.extend(flow_events(report));

    let mut counters = String::new();
    for (i, (k, v)) in report.counters.iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        let _ = write!(counters, "\"{}\":{v}", escape(k));
    }
    let mut gauges = String::new();
    for (i, (k, v)) in report.gauges.iter().enumerate() {
        if i > 0 {
            gauges.push(',');
        }
        let _ = write!(gauges, "\"{}\":{}", escape(k), num(*v));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}],\
         \"counters\":{{{counters}}},\"gauges\":{{{gauges}}}}}",
        parts.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::{Trace, REQUEST_ID_ARG};

    fn sample_report() -> TraceReport {
        let trace = Trace::new();
        let _on = trace.activate();
        {
            let _s = trace.span_with("host \"work\"", &[("m", "100".to_string())]);
        }
        trace.device_span(Lane::Compute, "spread_SM", "kernel", 0.0, 3e-3, &[]);
        trace.device_span(Lane::H2d, "memcpy_htod", "memcpy", 1e-3, 5e-4, &[]);
        trace.counter("bins.nonempty").add(42);
        trace.gauge("gpu.occupancy").set(0.5);
        trace.report()
    }

    #[test]
    fn export_parses_back_as_json() {
        let json = chrome_json(&sample_report());
        let doc = Json::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 8 metadata events (2 process names, 1 host thread, 5 lanes)
        // + 3 recorded
        assert_eq!(events.len(), 11);
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(ph == "X" || ph == "M");
            assert!(ev.get("pid").unwrap().as_f64().is_some());
        }
        let x: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(x.len(), 3);
        // durations are microseconds
        let spread = x
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("spread_SM"))
            .unwrap();
        assert_eq!(spread.get("dur").unwrap().as_f64(), Some(3000.0));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("bins.nonempty")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("gpu.occupancy")
                .unwrap()
                .as_f64(),
            Some(0.5)
        );
    }

    #[test]
    fn strings_are_escaped() {
        let json = chrome_json(&sample_report());
        assert!(json.contains("host \\\"work\\\""));
        let doc = Json::parse(&json).expect("escapes must keep the JSON valid");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("host \"work\"")));
    }

    #[test]
    fn lanes_map_to_distinct_tids() {
        let lanes = [Lane::Plan, Lane::Compute, Lane::H2d, Lane::D2h, Lane::Alloc];
        let mut tids: Vec<u64> = lanes.iter().map(|&l| lane_tid(l)).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), lanes.len());
    }

    #[test]
    fn host_threads_get_named_rows() {
        let trace = Trace::new();
        drop(trace.span("outer"));
        let t2 = trace.clone();
        std::thread::Builder::new()
            .name("serve-w0".into())
            .spawn(move || drop(t2.span("inner")))
            .unwrap()
            .join()
            .unwrap();
        let json = chrome_json(&trace.report());
        let doc = Json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("M")
                    && e.get("name").unwrap().as_str() == Some("thread_name")
                    && e.get("pid").unwrap().as_f64() == Some(1.0)
            })
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(thread_names.len(), 2, "one named row per host thread");
        assert!(thread_names.contains(&"serve-w0"));
        // the two host spans landed on different tids
        let span_tids: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("tid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(span_tids.len(), 2);
        assert_ne!(span_tids[0], span_tids[1]);
    }

    #[test]
    fn request_events_emit_flows_down_to_device_lanes() {
        let trace = Trace::new();
        let _on = trace.activate();
        {
            let _req = trace.span_with("serve.execute", &[(REQUEST_ID_ARG, "7".to_string())]);
            trace.device_span(Lane::Compute, "spread_SM", "kernel", 0.0, 1e-3, &[]);
        }
        let json = chrome_json(&trace.report());
        let doc = Json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let flows: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("request")))
            .collect();
        assert_eq!(flows.len(), 2);
        // start on the host serve span, finish on the device lane
        assert_eq!(flows[0].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(flows[0].get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(flows[1].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(flows[1].get("pid").unwrap().as_f64(), Some(2.0));
        assert_eq!(flows[1].get("bp").unwrap().as_str(), Some("e"));
        for f in &flows {
            assert_eq!(f.get("id").unwrap().as_f64(), Some(7.0));
        }
    }
}
