//! Chrome trace-event JSON exporter.
//!
//! Produces the "JSON Array Format with metadata" flavour accepted by
//! `chrome://tracing` and Perfetto: a top-level object with a
//! `traceEvents` array of complete (`"ph": "X"`) events plus metadata
//! (`"ph": "M"`) events naming the processes and lanes. Two process
//! groups are emitted:
//!
//! * pid 1 — **host**: wall-clock spans from the [`crate::span!`] macro;
//! * pid 2 — **sim-gpu**: simulated-device time, one thread row per
//!   [`crate::Lane`] (plan stages, compute, H2D, D2H, alloc).
//!
//! Counter and gauge snapshots ride along under the non-standard
//! `counters` / `gauges` keys, which trace viewers ignore but tests and
//! scripts can read back with [`crate::json`].

use crate::{Lane, TraceEvent, TraceReport, Track};
use std::fmt::Write;

const HOST_PID: u32 = 1;
const GPU_PID: u32 = 2;

fn lane_tid(lane: Lane) -> u32 {
    match lane {
        Lane::Plan => 1,
        Lane::Compute => 2,
        Lane::H2d => 3,
        Lane::D2h => 4,
        Lane::Alloc => 5,
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a finite f64 for JSON (no NaN/Inf — clamped to 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn meta_event(pid: u32, tid: u32, name: &str, kind: &str) -> String {
    format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

fn complete_event(ev: &TraceEvent) -> String {
    let (pid, tid) = match ev.track {
        Track::Host => (HOST_PID, 1),
        Track::Device(lane) => (GPU_PID, lane_tid(lane)),
    };
    let mut args = format!("\"id\":{},\"parent\":{}", ev.id, ev.parent);
    for (k, v) in &ev.args {
        let _ = write!(args, ",\"{}\":\"{}\"", escape(k), escape(v));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
        escape(&ev.name),
        escape(&ev.cat),
        num(ev.ts_us),
        num(ev.dur_us),
    )
}

/// Render a report as Chrome trace-event JSON.
pub fn chrome_json(report: &TraceReport) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(report.events.len() + 8);
    parts.push(meta_event(HOST_PID, 0, "host", "process_name"));
    parts.push(meta_event(HOST_PID, 1, "host spans", "thread_name"));
    parts.push(meta_event(GPU_PID, 0, "sim-gpu", "process_name"));
    for lane in [Lane::Plan, Lane::Compute, Lane::H2d, Lane::D2h, Lane::Alloc] {
        parts.push(meta_event(
            GPU_PID,
            lane_tid(lane),
            lane.label(),
            "thread_name",
        ));
    }
    parts.extend(report.events.iter().map(complete_event));

    let mut counters = String::new();
    for (i, (k, v)) in report.counters.iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        let _ = write!(counters, "\"{}\":{v}", escape(k));
    }
    let mut gauges = String::new();
    for (i, (k, v)) in report.gauges.iter().enumerate() {
        if i > 0 {
            gauges.push(',');
        }
        let _ = write!(gauges, "\"{}\":{}", escape(k), num(*v));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}],\
         \"counters\":{{{counters}}},\"gauges\":{{{gauges}}}}}",
        parts.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::Trace;

    fn sample_report() -> TraceReport {
        let trace = Trace::new();
        let _on = trace.activate();
        {
            let _s = trace.span_with("host \"work\"", &[("m", "100".to_string())]);
        }
        trace.device_span(Lane::Compute, "spread_SM", "kernel", 0.0, 3e-3, &[]);
        trace.device_span(Lane::H2d, "memcpy_htod", "memcpy", 1e-3, 5e-4, &[]);
        trace.counter("bins.nonempty").add(42);
        trace.gauge("gpu.occupancy").set(0.5);
        trace.report()
    }

    #[test]
    fn export_parses_back_as_json() {
        let json = chrome_json(&sample_report());
        let doc = Json::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 8 metadata events + 3 recorded
        assert_eq!(events.len(), 11);
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(ph == "X" || ph == "M");
            assert!(ev.get("pid").unwrap().as_f64().is_some());
        }
        let x: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(x.len(), 3);
        // durations are microseconds
        let spread = x
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("spread_SM"))
            .unwrap();
        assert_eq!(spread.get("dur").unwrap().as_f64(), Some(3000.0));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("bins.nonempty")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("gpu.occupancy")
                .unwrap()
                .as_f64(),
            Some(0.5)
        );
    }

    #[test]
    fn strings_are_escaped() {
        let json = chrome_json(&sample_report());
        assert!(json.contains("host \\\"work\\\""));
        let doc = Json::parse(&json).expect("escapes must keep the JSON valid");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("host \"work\"")));
    }

    #[test]
    fn lanes_map_to_distinct_tids() {
        let lanes = [Lane::Plan, Lane::Compute, Lane::H2d, Lane::D2h, Lane::Alloc];
        let mut tids: Vec<u32> = lanes.iter().map(|&l| lane_tid(l)).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), lanes.len());
    }
}
