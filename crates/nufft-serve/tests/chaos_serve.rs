//! Chaos suite for the overload/fault-containment layer: circuit
//! breakers (open → fast-fail → half-open trial → bit-exact recovery),
//! brownout degradation (method override and CPU fallback), worker
//! supervision (panic → typed failure → respawn → recovery), and the
//! combined overload-plus-persistent-fault acceptance scenario from
//! the PR spec. Everything is driven by gpu-sim's seeded fault
//! injection and simulated clock, so every run is deterministic.
//!
//! The acceptance scenario runs one seed by default; `SERVE_CHAOS=1`
//! (see scripts/check.sh) widens it to a multi-seed sweep.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cufinufft::{Plan, RecoveryPolicy};
use gpu_sim::{Device, FaultMode, FaultPlan};
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{
    Complex, Method, NufftError, NufftPlan, Points, Precision, Shape, TransformSpec,
};
use nufft_serve::{
    BreakerPolicy, Brownout, ChaosHook, Health, NufftServer, ServeConfig, ShedPolicy,
    SloThresholds, SupervisorPolicy,
};
use nufft_trace::Trace;

const N: usize = 24;
const M: usize = 400;

fn spec_sm() -> TransformSpec {
    TransformSpec::type1(&[N, N])
        .eps(1e-5)
        .precision(Precision::F32)
        .method(Method::Sm)
}

fn points_for(spec: &TransformSpec, seed: u64) -> Arc<Points<f32>> {
    Arc::new(gen_points::<f32>(
        PointDist::Rand,
        spec.dim(),
        M,
        Shape::from_slice(&spec.modes),
        seed,
    ))
}

/// Ground truth on a clean device: dedicated plan, sequential execute.
fn direct(spec: &TransformSpec, pts: &Points<f32>, input: &[Complex<f32>]) -> Vec<Complex<f32>> {
    let dev = Device::v100();
    let mut plan = Plan::<f32>::from_spec(spec, &dev).expect("direct plan");
    plan.set_pts(pts).expect("direct set_pts");
    let mut out = vec![Complex::<f32>::ZERO; spec.output_len(pts.len())];
    plan.execute(input, &mut out).expect("direct execute");
    out
}

fn breaker(streak: u32, cooldown: f64, brownout: Brownout) -> BreakerPolicy {
    BreakerPolicy {
        enabled: true,
        failure_streak: streak,
        cooldown,
        brownout,
    }
}

// ---------------------------------------------------------------------
// circuit breaker lifecycle
// ---------------------------------------------------------------------

#[test]
fn breaker_opens_fast_fails_and_recovers_bit_exact() {
    let dev = Device::v100();
    let trace = Trace::new();
    let config = ServeConfig {
        recovery: RecoveryPolicy::none(),
        breaker: breaker(2, 0.05, Brownout::FailFast),
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = NufftServer::start(&dev, config).unwrap();
    let spec = spec_sm();
    let pts = points_for(&spec, 7);
    let input = gen_strengths::<f32>(M, 1);

    // baseline on the healthy device
    let baseline = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();

    // persistent launch fault on the SM spread kernel
    dev.inject_faults(FaultPlan::new(1).fail_kernel("spread_SM", FaultMode::Always));

    // two persistent failures reach the streak and open the breaker
    for i in 0..2 {
        let err = server
            .submit(&spec, &pts, input.clone())
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(
            matches!(
                err.root_cause(),
                NufftError::DeviceFault {
                    persistent: true,
                    ..
                }
            ),
            "failure {i}: {err}"
        );
    }
    let mid = server.stats();
    assert_eq!(mid.breaker_opens, 1, "breaker opens exactly at the streak");
    assert_eq!(mid.open_breakers, 1);
    assert!(mid.quarantined >= 1, "poisoned plans were quarantined");

    // while open: typed fast-fail without any device work
    let launches_before = dev.faults_injected();
    let err = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();
    match &err {
        NufftError::BreakerOpen {
            spec: label,
            retry_after,
        } => {
            assert!(label.contains("t1"), "label: {label}");
            assert!(*retry_after >= 0.0);
        }
        other => panic!("expected BreakerOpen, got {other}"),
    }
    assert_eq!(
        dev.faults_injected(),
        launches_before,
        "a fast-fail must not touch the device"
    );
    assert_eq!(server.stats().breaker_fastfails, 1);

    // report surfaces the open breaker as a health breach
    let report = server.report();
    assert!(report.open_breakers >= 1);
    assert_ne!(report.health, Health::Healthy);

    // fault cleared + cooldown elapsed in simulated time: the half-open
    // trial rebuilds the plan and serves bit-exactly vs the baseline
    dev.clear_faults();
    dev.advance("test.cooldown", 1.0);
    let recovered = server.submit(&spec, &pts, input).unwrap().wait().unwrap();
    assert_eq!(recovered, baseline, "recovery must be bit-exact");
    assert_eq!(server.stats().open_breakers, 0, "trial success closes");
}

#[test]
fn breakers_isolate_specs_from_each_other() {
    let dev = Device::v100();
    let config = ServeConfig {
        recovery: RecoveryPolicy::none(),
        breaker: breaker(1, 10.0, Brownout::FailFast),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&dev, config).unwrap();
    let bad = spec_sm();
    let good = spec_sm().method(Method::GmSort);
    let pts = points_for(&bad, 7);
    let input = gen_strengths::<f32>(M, 1);

    dev.inject_faults(FaultPlan::new(1).fail_kernel("spread_SM", FaultMode::Always));
    // one failure opens the bad spec's breaker (streak = 1)
    server
        .submit(&bad, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();
    let err = server
        .submit(&bad, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, NufftError::BreakerOpen { .. }), "got {err}");

    // the sibling spec (GM-sort kernel, unfaulted) keeps serving
    let got = server
        .submit(&good, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(got, direct(&good, &pts, &input));
    assert_eq!(server.stats().open_breakers, 1);
}

// ---------------------------------------------------------------------
// brownout degradation
// ---------------------------------------------------------------------

#[test]
fn method_override_brownout_serves_degraded_bit_exact() {
    let dev = Device::v100();
    let config = ServeConfig {
        recovery: RecoveryPolicy::none(),
        breaker: breaker(1, 10.0, Brownout::MethodOverride),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&dev, config).unwrap();
    let spec = spec_sm();
    let pts = points_for(&spec, 7);
    let input = gen_strengths::<f32>(M, 1);

    // only the SM kernel faults; GM-sort stays healthy
    dev.inject_faults(FaultPlan::new(1).fail_kernel("spread_SM", FaultMode::Always));
    server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();

    // breaker open → brownout re-plans SM → GM-sort and still serves
    let degraded = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        degraded,
        direct(&spec.clone().method(Method::GmSort), &pts, &input),
        "brownout result must equal a direct GM-sort plan"
    );
    let stats = server.stats();
    assert_eq!(stats.brownouts, 1);
    assert_eq!(stats.breaker_fastfails, 0, "degraded, not fast-failed");
}

#[test]
fn cpu_brownout_serves_on_the_cpu_backend() {
    let dev = Device::v100();
    let config = ServeConfig {
        recovery: RecoveryPolicy::none(),
        breaker: breaker(1, 10.0, Brownout::Cpu),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&dev, config).unwrap();
    let spec = spec_sm();
    let pts = points_for(&spec, 7);
    let input = gen_strengths::<f32>(M, 1);

    // every host-to-device copy faults: the GPU path is fully down
    dev.inject_faults(FaultPlan::new(1).fail_memcpy("htod", FaultMode::Always));
    server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();

    // breaker open → the request is served by finufft-cpu instead
    let got = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    let expected = {
        let opts = finufft_cpu::Opts {
            fine_sizing: spec.fine_sizing,
            ..finufft_cpu::Opts::default()
        };
        let mut plan =
            finufft_cpu::Plan::<f32>::new(spec.ttype, &spec.modes, spec.iflag, spec.eps, opts)
                .expect("cpu plan");
        plan.set_points(&pts).expect("cpu set_points");
        let mut out = vec![Complex::<f32>::ZERO; spec.output_len(pts.len())];
        plan.execute(&input, &mut out).expect("cpu execute");
        out
    };
    assert_eq!(got, expected, "CPU brownout must match a direct CPU plan");
    assert_eq!(server.stats().brownouts, 1);
}

// ---------------------------------------------------------------------
// worker supervision
// ---------------------------------------------------------------------

#[test]
fn worker_panic_respawns_and_recovers_to_healthy() {
    let trace = Trace::new();
    let panic_once = Arc::new(AtomicBool::new(true));
    let hook_flag = Arc::clone(&panic_once);
    let config = ServeConfig {
        supervisor: SupervisorPolicy { max_respawns: 3 },
        // a deliberately-panicking kernel hook: blows up the first
        // chunk, behaves afterwards
        chaos_hook: Some(ChaosHook::new(move |_| {
            if hook_flag.swap(false, Ordering::SeqCst) {
                panic!("injected kernel bug");
            }
        })),
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_sm();
    let pts = points_for(&spec, 7);
    let input = gen_strengths::<f32>(M, 1);

    // the poisoned in-flight request fails typed, never hangs
    let err = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();
    match &err {
        NufftError::WorkerPanic(msg) => assert!(msg.contains("injected kernel bug"), "{msg}"),
        other => panic!("expected WorkerPanic, got {other}"),
    }

    // mid-crash report: the lone finished request failed → unhealthy
    let slo = SloThresholds {
        min_availability: 0.4,
        ..SloThresholds::default()
    };
    assert_eq!(server.report_with(slo).health, Health::Unhealthy);

    // the respawned worker (fresh plan cache) serves the same spec
    let recovered = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(recovered, direct(&spec, &pts, &input));

    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
    assert_eq!(trace.report().counters["serve.worker_respawn"], 1);
    // availability back over threshold: the verdict transitions healthy
    assert_eq!(server.report_with(slo).health, Health::Healthy);
}

#[test]
fn respawn_budget_exhaustion_shuts_down_without_hangs() {
    let config = ServeConfig {
        supervisor: SupervisorPolicy { max_respawns: 1 },
        chaos_hook: Some(ChaosHook::new(|_| panic!("crash loop"))),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_sm();
    let pts = points_for(&spec, 7);

    // first panic consumes the only respawn; second exhausts the budget
    for i in 0..2 {
        let err = server
            .submit(&spec, &pts, gen_strengths::<f32>(M, i))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, NufftError::WorkerPanic(_)), "req {i}: {err}");
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 2);
    assert_eq!(stats.worker_respawns, 1, "budget caps the respawns");

    // the supervisor shut the queue down: admission now refuses typed
    let err = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 9))
        .unwrap_err();
    assert_eq!(err, NufftError::Shutdown);
}

// ---------------------------------------------------------------------
// acceptance: overload + persistent faults, then full recovery
// ---------------------------------------------------------------------

/// One full chaos round at a given seed: 4 concurrent clients push
/// 120 requests against a capacity-8 queue while the SM spread kernel
/// faults persistently. The run must shed/fast-fail under pressure,
/// open the bad spec's breaker within its streak, resolve every
/// admitted response with zero hangs, and — once the fault clears and
/// the cooldown elapses — serve the previously-poisoned spec again,
/// bit-exact against a direct plan.
fn chaos_round(seed: u64) {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 30;

    let dev = Device::v100();
    let trace = Trace::new();
    let config = ServeConfig {
        queue_capacity: 8,
        max_batch: 4,
        recovery: RecoveryPolicy::none(),
        breaker: breaker(3, 0.05, Brownout::FailFast),
        shed: ShedPolicy {
            enabled: true,
            // any measurable wall-clock wait breaches this, so the shed
            // limit collapses to min_limit as soon as pressure appears
            target_queue_wait_p90: 1e-9,
            min_limit: 4,
        },
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = Arc::new(NufftServer::start(&dev, config).unwrap());

    let bad = spec_sm();
    let good = spec_sm().method(Method::GmSort);
    let pts = points_for(&bad, 21);

    // persistent launch fault on the SM kernel only: `bad` is poisoned,
    // `good` keeps serving
    dev.inject_faults(FaultPlan::new(seed).fail_kernel("spread_SM", FaultMode::Always));

    /// xorshift64* — deterministic per-client randomness.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let bad = bad.clone();
            let good = good.clone();
            let pts = Arc::clone(&pts);
            std::thread::spawn(move || {
                let mut rng = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(c as u64 + 1);
                let mut responses = Vec::new();
                let mut overloaded = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    let spec = if xorshift(&mut rng).is_multiple_of(3) {
                        &bad
                    } else {
                        &good
                    };
                    let input =
                        gen_strengths::<f32>(M, 1000 + (c * REQUESTS_PER_CLIENT + i) as u64);
                    match server.submit(spec, &pts, input) {
                        Ok(resp) => responses.push((spec == &bad, resp)),
                        Err(NufftError::Overloaded { .. }) | Err(NufftError::QueueFull { .. }) => {
                            overloaded += 1;
                        }
                        Err(other) => panic!("unexpected admission error: {other}"),
                    }
                }
                // every admitted response must resolve — no hangs
                let mut ok = 0usize;
                let mut bad_failures = 0usize;
                for (was_bad, resp) in responses {
                    match resp.wait() {
                        Ok(out) => {
                            assert_eq!(out.len(), N * N);
                            ok += 1;
                        }
                        Err(e) => {
                            assert!(was_bad, "good spec must never fail, got {e}");
                            assert!(
                                matches!(
                                    e.root_cause(),
                                    NufftError::DeviceFault {
                                        persistent: true,
                                        ..
                                    }
                                ) || matches!(e, NufftError::BreakerOpen { .. }),
                                "bad-spec failure must be typed, got {e}"
                            );
                            bad_failures += 1;
                        }
                    }
                }
                (ok, bad_failures, overloaded)
            })
        })
        .collect();

    let mut total_ok = 0usize;
    let mut total_bad_failures = 0usize;
    let mut total_overloaded = 0usize;
    for client in clients {
        let (ok, bad_failures, overloaded) = client.join().expect("client thread");
        total_ok += ok;
        total_bad_failures += bad_failures;
        total_overloaded += overloaded;
    }

    let stats = server.stats();
    let attempts = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(stats.accepted + stats.rejected + stats.shed, attempts);
    assert_eq!(
        stats.completed + stats.failed + stats.cancelled,
        stats.accepted,
        "every admitted request resolved exactly once"
    );
    assert!(total_ok > 0, "the healthy spec made progress under chaos");
    assert_eq!(
        stats.shed + stats.rejected,
        total_overloaded as u64,
        "admission refusals observed by clients match the stats"
    );

    // Aggressive shedding can refuse most of the storm, so some seeds
    // admit fewer bad-spec requests than the breaker streak. Drive the
    // remainder through the blocking path (which never sheds): each
    // request fails typed and advances the streak until the breaker
    // opens.
    let mut driven_failures = 0usize;
    for i in 0..3u64 {
        if server.stats().breaker_opens >= 1 {
            break;
        }
        server
            .submit_wait(&bad, &pts, gen_strengths::<f32>(M, 9_000 + i))
            .expect("blocking admission after the storm")
            .wait()
            .expect_err("the poisoned spec still fails while faulted");
        driven_failures += 1;
    }
    assert!(
        total_bad_failures + driven_failures > 0,
        "seed {seed}: the poisoned spec should have failed requests"
    );
    let stats = server.stats();
    assert!(
        stats.breaker_opens >= 1,
        "seed {seed}: persistent failures must open the breaker"
    );

    // --- recovery: fault cleared, cooldown elapsed in simulated time ---
    dev.clear_faults();
    dev.advance("test.cooldown", 1.0);
    let input = gen_strengths::<f32>(M, 4242);
    let recovered = server
        .submit_wait(&bad, &pts, input.clone())
        .expect("admission after chaos")
        .wait()
        .expect("the cleared spec serves again");
    assert_eq!(
        recovered,
        direct(&bad, &pts, &input),
        "seed {seed}: post-recovery result must be bit-exact vs a direct plan"
    );
    assert_eq!(server.stats().open_breakers, 0, "breaker closed on success");

    eprintln!(
        "chaos seed {seed}: {} ok / {} bad-spec failures / {} refused; \
         {} sheds, {} breaker opens, {} fastfails, {} quarantines",
        total_ok,
        total_bad_failures,
        total_overloaded,
        stats.shed,
        stats.breaker_opens,
        stats.breaker_fastfails,
        stats.quarantined,
    );
}

#[test]
fn chaos_acceptance_overload_with_persistent_faults() {
    // 1-seed smoke by default; SERVE_CHAOS=1 widens the sweep
    let seeds: &[u64] = if std::env::var("SERVE_CHAOS").as_deref() == Ok("1") {
        &[1, 2, 3, 4, 5]
    } else {
        &[1]
    };
    for &seed in seeds {
        chaos_round(seed);
    }
}
