//! Integration suite for the plan server: cache behavior (a hit must
//! demonstrably skip plan construction), coalescing (batched execution
//! bitwise identical to sequential), backpressure, fault isolation, and
//! shutdown semantics. The randomized multi-client sweep at the bottom
//! runs under `SERVE=full` (see scripts/check.sh).

use std::sync::Arc;

use cufinufft::{Plan, RecoveryPolicy};
use gpu_sim::{Device, FaultMode, FaultPlan};
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, NufftError, Points, Precision, Shape, TransformSpec};
use nufft_serve::{
    block_on, join_all, ChaosHook, NufftServer, ServeConfig, ShedPolicy, SubmitOptions,
};
use nufft_trace::Trace;

const N: usize = 24;
const M: usize = 400;

fn spec_2d() -> TransformSpec {
    TransformSpec::type1(&[N, N])
        .eps(1e-5)
        .precision(Precision::F32)
}

fn points_for(spec: &TransformSpec, seed: u64) -> Arc<Points<f32>> {
    // the served plan's fine grid is what matters for point scaling;
    // gen_points only needs a bounding shape, so reuse the mode shape
    Arc::new(gen_points::<f32>(
        PointDist::Rand,
        spec.dim(),
        M,
        Shape::from_slice(&spec.modes),
        seed,
    ))
}

/// Ground truth: one dedicated plan per call, sequential execute.
fn direct(spec: &TransformSpec, pts: &Points<f32>, input: &[Complex<f32>]) -> Vec<Complex<f32>> {
    let dev = Device::v100();
    let mut plan = Plan::<f32>::from_spec(spec, &dev).expect("direct plan");
    plan.set_pts(pts).expect("direct set_pts");
    let mut out = vec![Complex::<f32>::ZERO; spec.output_len(pts.len())];
    plan.execute(input, &mut out).expect("direct execute");
    out
}

// ---------------------------------------------------------------------
// plan cache
// ---------------------------------------------------------------------

#[test]
fn cache_hit_skips_plan_construction() {
    let trace = Trace::new();
    let server =
        NufftServer::start(&Device::v100(), ServeConfig::default().with_trace(&trace)).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    let first = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap()
        .wait()
        .unwrap();
    let second = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(first.len(), N * N);
    assert_eq!(second.len(), N * N);

    // the acceptance check: exactly one plan was ever built — the
    // second request emitted no plan.build span and hit the cache
    let report = trace.report();
    assert_eq!(
        report.spans_named("plan.build").len(),
        1,
        "cache hit must not rebuild the plan"
    );
    assert_eq!(report.counters["serve.cache_miss"], 1);
    assert_eq!(report.counters["serve.cache_hit"], 1);

    let stats = server.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 2);
    // same points on a warm plan: the bin-sort was reused too
    assert_eq!(stats.setpts_reuses, 1);
}

#[test]
fn distinct_specs_get_distinct_plans() {
    let trace = Trace::new();
    let server =
        NufftServer::start(&Device::v100(), ServeConfig::default().with_trace(&trace)).unwrap();
    // differ only in tolerance: must never share a cache slot
    let loose = spec_2d().eps(1e-3);
    let tight = spec_2d().eps(1e-6);
    let pts = points_for(&loose, 7);
    let input = gen_strengths::<f32>(M, 3);

    let a = server
        .submit(&loose, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    let b = server.submit(&tight, &pts, input).unwrap().wait().unwrap();

    assert_eq!(trace.report().spans_named("plan.build").len(), 2);
    assert_eq!(server.stats().cache_misses, 2);
    assert_eq!(server.stats().cache_hits, 0);
    // different kernel widths: the outputs must actually differ
    assert_ne!(a, b);
}

#[test]
fn cache_evicts_lru_spec_at_capacity_and_rebuilds() {
    let trace = Trace::new();
    let config = ServeConfig {
        cache_capacity: 2,
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = NufftServer::start(&Device::v100(), config).unwrap();

    let spec_a = spec_2d().eps(1e-3);
    let spec_b = spec_2d().eps(1e-4);
    let spec_c = spec_2d().eps(1e-5);
    let pts = points_for(&spec_a, 7);

    for spec in [&spec_a, &spec_b, &spec_c] {
        server
            .submit(spec, &pts, gen_strengths::<f32>(M, 4))
            .unwrap()
            .wait()
            .unwrap();
    }
    // capacity 2: admitting C evicted A (the least recently used)
    assert_eq!(server.stats().cache_evictions, 1);

    // A again: a fresh miss and a rebuild; B is evicted in turn
    server
        .submit(&spec_a, &pts, gen_strengths::<f32>(M, 5))
        .unwrap()
        .wait()
        .unwrap();
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_evictions, 2);
    assert_eq!(trace.report().spans_named("plan.build").len(), 4);
}

// ---------------------------------------------------------------------
// coalescing
// ---------------------------------------------------------------------

#[test]
fn coalesced_batches_match_sequential_bitwise() {
    const REQUESTS: usize = 6;
    const MAX_BATCH: usize = 4;
    let config = ServeConfig {
        max_batch: MAX_BATCH,
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);
    let inputs: Vec<Vec<Complex<f32>>> = (0..REQUESTS)
        .map(|i| gen_strengths::<f32>(M, 10 + i as u64))
        .collect();

    // hold the worker off so all six requests land in one queue sweep
    server.pause();
    let responses: Vec<_> = inputs
        .iter()
        .map(|input| server.submit(&spec, &pts, input.clone()).unwrap())
        .collect();
    assert_eq!(server.queue_depth(), REQUESTS);
    server.resume();

    let results = block_on(join_all(responses));
    let stats = server.stats();
    // one plan, one sort, ceil(6/4) = 2 stacked launches
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(
        stats.batches as usize,
        REQUESTS.div_ceil(MAX_BATCH),
        "compatible concurrent requests must coalesce"
    );
    assert_eq!(stats.coalesced as usize, REQUESTS);
    assert_eq!(stats.completed as usize, REQUESTS);

    // bitwise identical to sequential single-plan execution
    for (result, input) in results.into_iter().zip(&inputs) {
        assert_eq!(result.unwrap(), direct(&spec, &pts, input));
    }
}

#[test]
fn incompatible_requests_do_not_coalesce() {
    let server = NufftServer::start(&Device::v100(), ServeConfig::default()).unwrap();
    let spec = spec_2d();
    let pts_a = points_for(&spec, 7);
    let pts_b = points_for(&spec, 8); // same spec, different points

    server.pause();
    let ra = server
        .submit(&spec, &pts_a, gen_strengths::<f32>(M, 1))
        .unwrap();
    let rb = server
        .submit(&spec, &pts_b, gen_strengths::<f32>(M, 2))
        .unwrap();
    server.resume();

    let out = block_on(join_all(vec![ra, rb]));
    let stats = server.stats();
    // two groups (distinct points), each its own launch; plan shared
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert!(out.iter().all(|r| r.is_ok()));
}

// ---------------------------------------------------------------------
// admission control and backpressure
// ---------------------------------------------------------------------

#[test]
fn full_queue_rejects_with_typed_error() {
    let config = ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let r1 = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap();
    let r2 = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap();
    let overflow = server.submit(&spec, &pts, gen_strengths::<f32>(M, 3));
    assert_eq!(
        overflow.unwrap_err(),
        NufftError::QueueFull {
            depth: 2,
            capacity: 2
        }
    );
    server.resume();

    // the refused request wedged nothing: the admitted two complete
    assert!(block_on(join_all(vec![r1, r2])).iter().all(|r| r.is_ok()));
    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.peak_queue_depth, 2);
}

#[test]
fn submit_wait_applies_backpressure_instead_of_rejecting() {
    let config = ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Arc::new(NufftServer::start(&Device::v100(), config).unwrap());
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    // saturate the queue, then push 4 more through the blocking path
    // from another thread while the worker drains
    server.pause();
    let first = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 0))
        .unwrap();
    let producer = {
        let server = Arc::clone(&server);
        let spec = spec.clone();
        let pts = Arc::clone(&pts);
        std::thread::spawn(move || {
            (1..5)
                .map(|i| {
                    server
                        .submit_wait(&spec, &pts, gen_strengths::<f32>(M, i))
                        .unwrap()
                })
                .collect::<Vec<_>>()
        })
    };
    server.resume();
    let mut responses = vec![first];
    responses.extend(producer.join().unwrap());
    assert!(block_on(join_all(responses)).iter().all(|r| r.is_ok()));
    assert_eq!(server.stats().accepted, 5);
    assert_eq!(server.stats().rejected, 0);
}

#[test]
fn invalid_requests_are_refused_at_submission() {
    let server = NufftServer::start(&Device::v100(), ServeConfig::default()).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    // wrong precision tag for the data type
    let f64_spec = spec.clone().precision(Precision::F64);
    assert!(matches!(
        server.submit(&f64_spec, &pts, gen_strengths::<f32>(M, 1)),
        Err(NufftError::BadSpec(_))
    ));
    // wrong dimensionality
    let spec_3d = TransformSpec::type1(&[8, 8, 8]).precision(Precision::F32);
    assert!(matches!(
        server.submit(&spec_3d, &pts, gen_strengths::<f32>(M, 1)),
        Err(NufftError::BadSpec(_))
    ));
    // wrong strengths length for a type-1 with M sources
    assert_eq!(
        server
            .submit(&spec, &pts, gen_strengths::<f32>(M / 2, 1))
            .unwrap_err(),
        NufftError::LengthMismatch {
            expected: M,
            got: M / 2
        }
    );
    assert_eq!(server.stats().accepted, 0);
}

// ---------------------------------------------------------------------
// fault isolation (chaos)
// ---------------------------------------------------------------------

#[test]
fn device_fault_mid_request_fails_typed_without_wedging_the_queue() {
    let dev = Device::v100();
    let config = ServeConfig {
        // fail fast so the injected fault surfaces instead of retrying
        recovery: RecoveryPolicy::none(),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&dev, config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);
    let input = gen_strengths::<f32>(M, 1);

    // warm the plan, then make every host-to-device copy fault
    let warm = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    dev.inject_faults(FaultPlan::new(1).fail_memcpy("htod", FaultMode::Always));

    let err = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap_err();
    match &err {
        NufftError::Request { stage, .. } => {
            assert_eq!(stage, "plan.execute");
            assert!(
                matches!(err.root_cause(), NufftError::DeviceFault { .. }),
                "root cause should be the device fault, got {err}"
            );
        }
        other => panic!("expected a staged Request error, got {other}"),
    }

    // the persistent fault quarantined the cached plan; once the fault
    // clears, the same spec rebuilds from scratch and serves bit-exactly
    dev.clear_faults();
    let after = server.submit(&spec, &pts, input).unwrap().wait().unwrap();
    assert_eq!(after, warm);

    let stats = server.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(
        stats.quarantined, 1,
        "a persistent fault must evict the poisoned plan"
    );
    assert_eq!(stats.cache_misses, 2, "the next request rebuilds the plan");
}

#[test]
fn transient_fault_is_absorbed_by_the_recovery_layer() {
    let dev = Device::v100();
    // default policy: bounded retry absorbs one-shot faults
    let server = NufftServer::start(&dev, ServeConfig::default()).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);
    let input = gen_strengths::<f32>(M, 1);

    let clean = server
        .submit(&spec, &pts, input.clone())
        .unwrap()
        .wait()
        .unwrap();
    dev.inject_faults(FaultPlan::new(1).fail_memcpy("htod", FaultMode::Once));
    let recovered = server.submit(&spec, &pts, input).unwrap().wait().unwrap();
    assert_eq!(recovered, clean, "retry must reproduce the result exactly");
    assert_eq!(dev.faults_injected(), 1);
    assert_eq!(server.stats().failed, 0);
}

// ---------------------------------------------------------------------
// shutdown
// ---------------------------------------------------------------------

#[test]
fn shutdown_fails_queued_requests_and_refuses_new_ones() {
    let server = NufftServer::start(&Device::v100(), ServeConfig::default()).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let queued = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap();
    server.shutdown();

    assert_eq!(queued.wait().unwrap_err(), NufftError::Shutdown);
}

#[test]
fn mixed_precision_requests_share_one_server() {
    let server = NufftServer::start(&Device::v100(), ServeConfig::default()).unwrap();
    let spec32 = spec_2d();
    let spec64 = TransformSpec::type1(&[N, N])
        .eps(1e-9)
        .precision(Precision::F64);
    let pts32 = points_for(&spec32, 7);
    let pts64 = Arc::new(gen_points::<f64>(PointDist::Rand, 2, M, Shape::d2(N, N), 7));

    let r32 = server
        .submit(&spec32, &pts32, gen_strengths::<f32>(M, 1))
        .unwrap();
    let r64 = server
        .submit(&spec64, &pts64, gen_strengths::<f64>(M, 1))
        .unwrap();
    assert_eq!(r32.wait().unwrap().len(), N * N);
    assert_eq!(r64.wait().unwrap().len(), N * N);
    assert_eq!(server.stats().cache_misses, 2);
}

// ---------------------------------------------------------------------
// deadlines and cancellation
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_is_refused_at_admission() {
    let dev = Device::v100();
    let server = NufftServer::start(&dev, ServeConfig::default()).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    // the simulated clock starts at 0, so a deadline of 0 has passed
    let err = server
        .submit_opts(
            &spec,
            &pts,
            gen_strengths::<f32>(M, 1),
            SubmitOptions::with_deadline(0.0),
        )
        .unwrap_err();
    assert!(
        matches!(err, NufftError::DeadlineExceeded { deadline, now } if deadline == 0.0 && now >= 0.0),
        "got {err}"
    );
    let stats = server.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.accepted, 0, "an expired request never queues");
}

#[test]
fn deadline_expiring_in_queue_resolves_typed_without_device_work() {
    let trace = Trace::new();
    let dev = Device::v100();
    let server = NufftServer::start(&dev, ServeConfig::default().with_trace(&trace)).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let doomed = server
        .submit_opts(
            &spec,
            &pts,
            gen_strengths::<f32>(M, 1),
            SubmitOptions::with_deadline(dev.clock() + 1e-6),
        )
        .unwrap();
    // simulated time passes the deadline while the request sits queued
    dev.advance("test.idle", 1.0);
    server.resume();

    let err = doomed.wait().unwrap_err();
    assert!(
        matches!(err, NufftError::DeadlineExceeded { .. }),
        "got {err}"
    );
    let report = trace.report();
    assert!(
        report.spans_named("plan.build").is_empty(),
        "an expired request must not build a plan"
    );
    let stats = server.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.completed, 0);
}

#[test]
fn cancelled_request_resolves_cancelled_without_device_work() {
    let trace = Trace::new();
    let server =
        NufftServer::start(&Device::v100(), ServeConfig::default().with_trace(&trace)).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let keep = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap();
    let dropped = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap();
    dropped.cancel();
    assert!(dropped.is_cancelled());
    server.resume();

    assert_eq!(dropped.wait().unwrap_err(), NufftError::Cancelled);
    assert_eq!(keep.wait().unwrap().len(), N * N, "siblings are unaffected");
    let stats = server.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0, "a cancel is not a failure");
    assert_eq!(
        trace.report().spans_named("plan.build").len(),
        1,
        "only the surviving request planned"
    );
}

// ---------------------------------------------------------------------
// load shedding
// ---------------------------------------------------------------------

#[test]
fn shed_controller_rejects_early_once_queue_waits_blow_past_target() {
    let config = ServeConfig {
        shed: ShedPolicy {
            enabled: true,
            // any real queue wait breaches this, shrinking the limit to
            // min_limit deterministically
            target_queue_wait_p90: 1e-9,
            min_limit: 1,
        },
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    // seed the wait window: one request queued while paused
    server.pause();
    let seeded = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    server.resume();
    seeded.wait().unwrap();

    // p90 wait now far exceeds target → effective limit is min_limit=1:
    // one queued request is tolerated, the second is shed
    server.pause();
    let tolerated = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap();
    let err = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 3))
        .unwrap_err();
    match err {
        NufftError::Overloaded {
            depth,
            limit,
            capacity,
        } => {
            assert_eq!(limit, 1);
            assert!(depth >= limit);
            assert_eq!(capacity, 64);
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    server.resume();
    tolerated.wait().unwrap();

    let stats = server.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.rejected, 0, "shed is typed distinctly from QueueFull");
    let report = server.report();
    assert!(report.shed_rate > 0.0);
}

#[test]
fn disabled_shed_policy_restores_queuefull_admission() {
    let config = ServeConfig {
        queue_capacity: 1,
        shed: ShedPolicy {
            enabled: false,
            ..ShedPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let queued = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap();
    let err = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap_err();
    assert!(matches!(err, NufftError::QueueFull { .. }), "got {err}");
    server.resume();
    queued.wait().unwrap();
    assert_eq!(server.stats().shed, 0);
}

// ---------------------------------------------------------------------
// graceful drain and shutdown with in-flight work
// ---------------------------------------------------------------------

#[test]
fn drain_finishes_the_backlog_before_stopping() {
    let server = NufftServer::start(&Device::v100(), ServeConfig::default()).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let backlog: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(&spec, &pts, gen_strengths::<f32>(M, i))
                .unwrap()
        })
        .collect();
    // drain overrides the pause: the worker finishes queued work first
    let drained = server.drain(std::time::Duration::from_secs(10));
    assert!(drained, "backlog of 3 must drain well within 10s");
    for resp in backlog {
        assert_eq!(resp.wait().unwrap().len(), N * N);
    }
}

#[test]
fn drain_timeout_falls_back_to_hard_shutdown_with_no_hangs() {
    let config = ServeConfig {
        // stall every chunk launch so the backlog cannot drain in time
        chaos_hook: Some(ChaosHook::new(|_| {
            std::thread::sleep(std::time::Duration::from_millis(100));
        })),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let a = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 1))
        .unwrap();
    let b = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap();
    let drained = server.drain(std::time::Duration::from_millis(1));
    assert!(!drained, "a stalled worker cannot drain in 1ms");
    // hard-stop still resolves every response: in-flight work completes,
    // nothing hangs
    assert!(a.wait().is_ok());
    assert!(b.wait().is_ok());
}

#[test]
fn shutdown_mid_coalesced_batch_resolves_every_response() {
    use std::sync::mpsc;

    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = std::sync::Mutex::new(release_rx);
    let config = ServeConfig {
        chaos_hook: Some(ChaosHook::new(move |_| {
            // announce the chunk, then hold the worker mid-batch until
            // the test has initiated shutdown
            let _ = started_tx.send(());
            let _ = release_rx.lock().unwrap().recv();
        })),
        ..ServeConfig::default()
    };
    let server = NufftServer::start(&Device::v100(), config).unwrap();
    let spec = spec_2d();
    let pts = points_for(&spec, 7);

    server.pause();
    let batch: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(&spec, &pts, gen_strengths::<f32>(M, i))
                .unwrap()
        })
        .collect();
    server.resume();
    // the worker is now inside the coalesced chunk, pre-launch
    started_rx.recv().expect("worker reached the chunk");

    let shutdown = std::thread::spawn(move || server.shutdown());
    // shutdown is blocked joining the worker; release the chunk
    release_tx.send(()).unwrap();
    shutdown.join().expect("shutdown thread");

    // the in-flight coalesced batch completed; nothing hangs or leaks
    for resp in batch {
        assert_eq!(resp.wait().unwrap().len(), N * N);
    }
}

// ---------------------------------------------------------------------
// SERVE=full: randomized multi-client stress sweep
// ---------------------------------------------------------------------

/// xorshift64* — deterministic per-client randomness without a rand dep.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn randomized_multi_client_sweep() {
    if std::env::var("SERVE").as_deref() != Ok("full") {
        eprintln!("skipping randomized sweep (set SERVE=full to run)");
        return;
    }
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 25;

    let config = ServeConfig {
        queue_capacity: 8,
        cache_capacity: 2, // force evictions under load
        max_batch: 4,
        ..ServeConfig::default()
    };
    let server = Arc::new(NufftServer::start(&Device::v100(), config).unwrap());

    // shared pool: 3 specs x 2 point sets, truth precomputed per input
    let specs: Vec<TransformSpec> = vec![
        spec_2d().eps(1e-3),
        spec_2d().eps(1e-5),
        TransformSpec::type2(&[N, N])
            .eps(1e-4)
            .precision(Precision::F32),
    ];
    let points: Vec<Arc<Points<f32>>> = vec![points_for(&specs[0], 21), points_for(&specs[0], 22)];

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let specs = specs.clone();
            let points = points.clone();
            std::thread::spawn(move || {
                let mut rng = 0x9e37_79b9_7f4a_7c15 ^ (c as u64 + 1);
                for i in 0..REQUESTS_PER_CLIENT {
                    let spec = &specs[(xorshift(&mut rng) % specs.len() as u64) as usize];
                    let pts = &points[(xorshift(&mut rng) % points.len() as u64) as usize];
                    let seed = 100 + (c * REQUESTS_PER_CLIENT + i) as u64;
                    let input = gen_strengths::<f32>(spec.input_len(pts.len()), seed);
                    let got = server
                        .submit_wait(spec, pts, input.clone())
                        .expect("admission")
                        .wait()
                        .expect("request under load");
                    assert_eq!(got, direct(spec, pts, &input), "client {c} request {i}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    let stats = server.stats();
    assert_eq!(stats.completed as usize, CLIENTS * REQUESTS_PER_CLIENT);
    assert_eq!(stats.failed, 0);
    assert!(stats.cache_hits > 0, "the sweep should reuse warm plans");
    eprintln!(
        "sweep: {} completed, {} cache hits / {} misses / {} evictions, \
         {} batches ({} requests coalesced), peak depth {}",
        stats.completed,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.batches,
        stats.coalesced,
        stats.peak_queue_depth
    );
}
