//! Acceptance test for the observability stack (ISSUE 7): a mixed-spec
//! burst of ≥50 requests must leave behind a non-degenerate latency
//! histogram, a correlated per-request timeline, well-formed Prometheus
//! `serve_latency` buckets, a passing SLO report, and a trajectory
//! point that round-trips through the `nufft-bench/v1` schema
//! validator.

use std::sync::Arc;

use gpu_sim::Device;
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Points, Precision, Shape, TransformSpec};
use nufft_serve::{Health, NufftServer, RequestId, ServeConfig, SloThresholds};
use nufft_trace::bench::BenchReport;
use nufft_trace::{Trace, TraceReport};

const M: usize = 500;
const REQUESTS: u64 = 60;

fn mixed_specs() -> Vec<TransformSpec> {
    vec![
        TransformSpec::type1(&[24, 24])
            .eps(1e-5)
            .precision(Precision::F32),
        TransformSpec::type1(&[32, 32])
            .eps(1e-4)
            .precision(Precision::F32),
        TransformSpec::type2(&[24, 24])
            .eps(1e-5)
            .precision(Precision::F32),
        TransformSpec::type1(&[16, 16])
            .eps(1e-4)
            .precision(Precision::F64),
    ]
}

fn points32(seed: u64) -> Arc<Points<f32>> {
    Arc::new(gen_points::<f32>(
        PointDist::Rand,
        2,
        M,
        Shape::d2(64, 64),
        seed,
    ))
}

fn points64(seed: u64) -> Arc<Points<f64>> {
    Arc::new(gen_points::<f64>(
        PointDist::Rand,
        2,
        M,
        Shape::d2(64, 64),
        seed,
    ))
}

/// Drive `REQUESTS` mixed-spec requests through one traced server;
/// returns the trace report, the server's SLO report, and one sampled
/// request id per spec shape.
fn run_burst(trace: &Trace) -> (TraceReport, nufft_serve::ServeReport, Vec<RequestId>) {
    let config = ServeConfig {
        queue_capacity: 128,
        max_batch: 8,
        ..ServeConfig::default()
    }
    .with_trace(trace);
    let server = NufftServer::start(&Device::v100(), config).expect("server");
    // pause so a backlog builds: coalescing and queue-wait become
    // deterministic and non-trivial
    server.pause();

    let specs = mixed_specs();
    let p32 = points32(9);
    let p64 = points64(9);
    let mut waiters32 = Vec::new();
    let mut waiters64 = Vec::new();
    let mut sampled = Vec::new();
    for i in 0..REQUESTS {
        let spec = &specs[(i % specs.len() as u64) as usize];
        let id = match spec.precision {
            Precision::F32 => {
                let input = gen_strengths::<f32>(spec.input_len(M), i + 1);
                let r = server.submit(spec, &p32, input).expect("submit");
                let id = r.request_id();
                waiters32.push(r);
                id
            }
            Precision::F64 => {
                let input = gen_strengths::<f64>(spec.input_len(M), i + 1);
                let r = server.submit(spec, &p64, input).expect("submit");
                let id = r.request_id();
                waiters64.push(r);
                id
            }
        };
        if i < specs.len() as u64 {
            sampled.push(id);
        }
    }
    server.resume();
    for r in waiters32 {
        r.wait().expect("f32 request failed");
    }
    for r in waiters64 {
        r.wait().expect("f64 request failed");
    }
    let slo = server.report_with(SloThresholds {
        // functional-simulation latencies are huge in wall-clock terms
        // on a busy host; the SLO under test is availability/saturation
        max_p99_latency_s: 3600.0,
        ..SloThresholds::default()
    });
    let report = trace.report();
    server.shutdown();
    (report, slo, sampled)
}

#[test]
fn burst_observability_acceptance() {
    let trace = Trace::new();
    let (report, slo, sampled) = run_burst(&trace);

    // --- non-degenerate latency histogram ------------------------
    let lat = report
        .histograms
        .get("serve.latency")
        .expect("serve.latency histogram");
    assert_eq!(lat.count, REQUESTS);
    let (p50, p99) = (lat.p50().unwrap(), lat.p99().unwrap());
    assert!(
        p50 < p99,
        "latency histogram is degenerate: p50 {p50} >= p99 {p99}"
    );
    assert!(lat.min <= p50 && p99 <= lat.max);
    // queue-wait and batch-size families populated too
    assert_eq!(report.histograms["serve.queue_wait"].count, REQUESTS);
    let batch = &report.histograms["serve.batch_size"];
    assert!(batch.count >= 1);
    assert!(
        batch.max > 1.0,
        "paused backlog must coalesce: max batch {}",
        batch.max
    );

    // --- request timelines ---------------------------------------
    for id in &sampled {
        let timeline = report.request_timeline(id.0);
        let names: Vec<&str> = timeline.iter().map(|e| e.name.as_str()).collect();
        for need in ["serve.admit", "serve.queue", "serve.execute"] {
            assert!(
                names.contains(&need),
                "request {id}: timeline {names:?} missing {need}"
            );
        }
    }
    // the group representative's timeline reaches the plan stages
    let rep_timeline = report.request_timeline(sampled[0].0);
    let rep_names: Vec<&str> = rep_timeline.iter().map(|e| e.name.as_str()).collect();
    assert!(rep_names.contains(&"serve.group"));
    assert!(
        rep_names.iter().any(|n| n.starts_with("plan.")),
        "representative timeline should include plan spans: {rep_names:?}"
    );

    // --- ids are unique and dense from 1 --------------------------
    let corr = report.request_correlation();
    let mut ids: Vec<u64> = sampled.iter().map(|r| r.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), sampled.len(), "sampled ids must be unique");
    assert!(ids.iter().all(|id| corr.values().any(|v| v == id)));

    // --- well-formed Prometheus serve_latency family --------------
    let text = report.prometheus();
    assert!(text.contains("# TYPE serve_latency histogram"));
    let buckets: Vec<(f64, u64)> = text
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("serve_latency_bucket{le=\"")?;
            let (le, v) = rest.split_once("\"} ")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, v.parse().ok()?))
        })
        .collect();
    assert!(buckets.len() >= 3, "too few buckets: {buckets:?}");
    assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds sorted");
    assert!(
        buckets.windows(2).all(|w| w[0].1 <= w[1].1),
        "cumulative counts monotone"
    );
    let (last_bound, last_count) = *buckets.last().unwrap();
    assert!(last_bound.is_infinite());
    assert_eq!(last_count, REQUESTS);
    assert!(text.contains(&format!("serve_latency_count {REQUESTS}")));

    // --- SLO verdict ----------------------------------------------
    assert_eq!(slo.health, Health::Healthy, "breaches: {:?}", slo.breaches);
    assert_eq!(slo.availability, 1.0);
    assert_eq!(slo.stats.completed, REQUESTS);
    assert!(slo.latency.p50.is_some());

    // --- BENCH trajectory round-trip ------------------------------
    let mut bench = BenchReport::new("observability-test", 1_754_611_200);
    bench.push_row("burst_60_mixed", 0.123, 1);
    bench.add_histograms(&report, |n| n.starts_with("serve."));
    let dir = std::env::temp_dir().join(format!("obs-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_20250808.json");
    std::fs::write(&path, bench.to_json()).unwrap();
    let back = BenchReport::from_json(&std::fs::read_to_string(&path).unwrap())
        .expect("trajectory point validates");
    assert_eq!(back, bench);
    assert!(back.histograms.contains_key("serve.latency"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Overload events must reach every observability surface: the
/// Prometheus export carries the shed/deadline counters and the
/// breaker-state gauge with HELP/TYPE headers, and the ServeReport
/// JSON round-trips through the crate's own parser with the shed rate
/// and open-breaker gauge intact.
#[test]
fn overload_counters_export_and_report_json_round_trips() {
    use cufinufft::RecoveryPolicy;
    use gpu_sim::{FaultMode, FaultPlan};
    use nufft_serve::{BreakerPolicy, ShedPolicy, SubmitOptions};

    let dev = Device::v100();
    let trace = Trace::new();
    let config = ServeConfig {
        recovery: RecoveryPolicy::none(),
        breaker: BreakerPolicy {
            failure_streak: 1,
            ..BreakerPolicy::default()
        },
        shed: ShedPolicy {
            target_queue_wait_p90: 1e-9,
            min_limit: 1,
            ..ShedPolicy::default()
        },
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = NufftServer::start(&dev, config).expect("server");
    let spec = TransformSpec::type1(&[24, 24])
        .eps(1e-5)
        .precision(Precision::F32);
    let pts = points32(3);

    // deadline already expired at admission
    let expired = SubmitOptions::with_deadline(dev.clock());
    let err = server
        .submit_opts(&spec, &pts, gen_strengths::<f32>(M, 1), expired)
        .unwrap_err();
    assert!(matches!(
        err,
        nufft_common::NufftError::DeadlineExceeded { .. }
    ));

    // one persistent failure opens the streak-1 breaker
    dev.inject_faults(FaultPlan::new(5).fail_kernel("spread", FaultMode::Always));
    server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 2))
        .unwrap()
        .wait()
        .unwrap_err();

    // seed the shed window with a measurable queue wait, then trip the
    // collapsed limit with a queued backlog
    server.pause();
    let seed_resp = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 3))
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    server.resume();
    let _ = seed_resp.wait();
    server.pause();
    let filler = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 4))
        .unwrap();
    let err = server
        .submit(&spec, &pts, gen_strengths::<f32>(M, 5))
        .unwrap_err();
    assert!(matches!(err, nufft_common::NufftError::Overloaded { .. }));
    server.resume();
    let _ = filler.wait();

    let stats = server.stats();
    assert!(stats.shed >= 1 && stats.deadline_exceeded >= 1 && stats.breaker_opens >= 1);

    // --- Prometheus export ----------------------------------------
    let text = trace.report().prometheus();
    for family in ["serve_shed", "serve_deadline_exceeded"] {
        assert!(
            text.contains(&format!("# HELP {family} ")),
            "missing HELP for {family}"
        );
        assert!(
            text.contains(&format!("# TYPE {family} counter")),
            "missing TYPE for {family}"
        );
    }
    assert!(text.contains("# TYPE serve_breaker_state gauge"));
    assert!(text.contains("serve_breaker_state 1"));

    // --- ServeReport JSON round-trip ------------------------------
    let report = server.report();
    let doc = nufft_trace::json::Json::parse(&report.to_json()).expect("report json parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("nufft-serve-report/v1")
    );
    assert_eq!(
        doc.get("shed_rate").and_then(|v| v.as_f64()),
        Some(report.shed_rate)
    );
    assert_eq!(
        doc.get("open_breakers").and_then(|v| v.as_f64()),
        Some(report.open_breakers as f64)
    );
    assert!(report.shed_rate > 0.0);
    let stats_obj = doc.get("stats").expect("stats object");
    assert_eq!(
        stats_obj.get("shed").and_then(|v| v.as_f64()),
        Some(report.stats.shed as f64)
    );
    assert_ne!(doc.get("health").and_then(|v| v.as_str()), Some("healthy"));
    server.shutdown();
}

#[test]
fn chrome_export_carries_flows_and_thread_names() {
    let trace = Trace::new();
    let (report, _, sampled) = run_burst(&trace);
    let text = report.chrome_json();
    let doc = nufft_trace::json::Json::parse(&text).expect("valid chrome json");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents");

    // worker thread named via thread_name metadata
    let named: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("thread_name"))
        .filter_map(|e| Some(e.get("args")?.get("name")?.as_str()?.to_string()))
        .collect();
    assert!(
        named.iter().any(|n| n == "nufft-serve"),
        "serve worker should be a named row: {named:?}"
    );
    assert!(named.iter().any(|n| n.contains("compute")));

    // flow events tie the sampled request's spans together
    let flows: Vec<&nufft_trace::json::Json> = events
        .iter()
        .filter(|e| {
            matches!(
                e.get("ph").and_then(|v| v.as_str()),
                Some("s") | Some("t") | Some("f")
            )
        })
        .collect();
    assert!(!flows.is_empty(), "no flow events in export");
    let want = sampled[0].0 as f64;
    assert!(
        flows
            .iter()
            .any(|e| e.get("id").and_then(|v| v.as_f64()) == Some(want)),
        "no flow chain for request {}",
        sampled[0]
    );
}
