//! A std-only executor: enough async runtime to drive [`Response`]
//! futures without pulling tokio into a workspace that vendors all its
//! dependencies.
//!
//! [`block_on`] parks the calling thread between polls, waking through
//! `std::task::Wake` + `Thread::unpark`. [`join_all`] awaits a set of
//! responses; since the server runs them concurrently the moment they
//! are submitted, awaiting in order costs nothing — the slowest request
//! bounds the wall time either way.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{self, Thread};

use nufft_common::{Complex, Real, Result};

use crate::future::Response;

/// Wakes a parked [`block_on`] thread. The flag absorbs wakes that land
/// between a `Pending` poll and the park, so no wake-up is ever lost.
struct ThreadWaker {
    thread: Thread,
    woken: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drive `future` to completion on the current thread.
///
/// ```
/// let three = nufft_serve::block_on(async { 1 + 2 });
/// assert_eq!(three, 3);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let signal = Arc::new(ThreadWaker {
        thread: thread::current(),
        woken: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&signal));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !signal.woken.swap(false, Ordering::Acquire) {
                    thread::park();
                }
            }
        }
    }
}

/// Await every response, preserving submission order in the output.
pub async fn join_all<T: Real>(responses: Vec<Response<T>>) -> Vec<Result<Vec<Complex<T>>>> {
    let mut out = Vec::with_capacity(responses.len());
    for resp in responses {
        out.push(resp.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_survives_spurious_wakeups() {
        // a future that returns Pending once, self-waking immediately:
        // exercises the woken-flag path rather than a real parker
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = u32;
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0 {
                    Poll::Ready(7)
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(YieldOnce(false)), 7);
    }
}
