//! Minimal LRU map used for the plan cache.
//!
//! `HashMap` plus a monotone access tick: `get_mut` stamps the entry,
//! `insert` evicts the smallest stamp once over capacity. Eviction is an
//! O(n) scan, which is the right trade for a cache whose capacity is
//! "number of distinct transform geometries a service holds warm" —
//! single digits to low tens — and whose values (GPU plans with fine
//! grids attached) are far more expensive than the scan.

use std::collections::HashMap;
use std::hash::Hash;

/// Least-recently-used map with a fixed capacity (minimum 1).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
}

#[derive(Debug)]
struct Entry<V> {
    stamp: u64,
    value: V,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries; 0 is clamped to 1 so
    /// the cache can always hold the entry being worked on.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.stamp = tick;
            &mut e.value
        })
    }

    /// Insert `key`, marking it most recently used. If this pushes the
    /// cache over capacity the least-recently-used entry is removed and
    /// returned so the caller can count (or drain) the eviction.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                stamp: self.tick,
                value,
            },
        );
        if self.map.len() <= self.capacity {
            return None;
        }
        let lru = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| k.clone())
            .expect("cache is over capacity, so non-empty");
        self.map.remove(&lru).map(|e| (lru, e.value))
    }

    /// Evict `key` unconditionally, returning its value if resident.
    /// The serve layer uses this to quarantine a plan that failed with
    /// a persistent device fault so the next same-spec request rebuilds
    /// instead of re-failing.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|e| e.value)
    }

    /// Keys currently resident, in no particular order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.get_mut(&"a").is_none());
        assert!(c.insert("a", 1).is_none());
        assert_eq!(c.get_mut(&"a"), Some(&mut 1));
        assert!(c.get_mut(&"b").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // touch "a" so "b" becomes the LRU entry
        c.get_mut(&"a");
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(c.len(), 2);
        assert!(c.contains(&"a") && c.contains(&"c"));
    }

    #[test]
    fn reinserting_same_key_never_evicts_others() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(c.insert("a", 10).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_mut(&"a"), Some(&mut 10));
    }

    #[test]
    fn remove_evicts_unconditionally() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        assert_eq!(c.remove(&"a"), Some(1));
        assert!(!c.contains(&"a"));
        assert_eq!(c.remove(&"a"), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a", 1);
        let evicted = c.insert("b", 2);
        assert_eq!(evicted, Some(("a", 1)));
        assert_eq!(c.len(), 1);
    }
}
