//! The plan server: one worker thread owning a device and an LRU plan
//! cache, fed by a bounded submission queue.
//!
//! Request flow:
//!
//! 1. [`NufftServer::submit`] validates the [`TransformSpec`] against
//!    the request data, admission-controls against the queue capacity
//!    (non-blocking; [`NufftError::QueueFull`] on overflow — use
//!    [`NufftServer::submit_wait`] for blocking backpressure), and
//!    returns a [`Response`] future.
//! 2. The worker drains the queue in one sweep and **coalesces** the
//!    sweep: requests with the same spec *and* the same nonuniform
//!    points (fingerprint-grouped, then verified bit-exactly) form one
//!    group, executed as stacked [`Plan::execute_many`] batches of at
//!    most `max_batch` vectors — riding the plan's two-stream pipeline,
//!    with results bitwise identical to sequential execution.
//! 3. The plan for each group comes from an LRU cache keyed by the
//!    `TransformSpec` itself: a cache hit skips plan construction
//!    entirely (no `plan.build` span is emitted), and if the group's
//!    points fingerprint matches the plan's current points, `set_pts`
//!    is skipped too.
//! 4. Device faults surface through each plan's recovery layer; a fault
//!    that survives bounded retry fails *only the requests in that
//!    chunk* with a typed [`NufftError::Request`] chain (stage +
//!    root cause) — the worker and queue keep serving.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use cufinufft::{Plan, PlanBuilder, RecoveryPolicy, Tuning};
use gpu_sim::Device;
use nufft_common::{Complex, NufftError, Points, Precision, Real, Result, TransformSpec};
use nufft_trace::{Trace, REQUEST_ID_ARG};

use crate::future::{Response, ResponseCell};
use crate::lru::LruCache;
use crate::queue::{PushError, Queue};
use crate::report::{ServeReport, SloThresholds};

/// Identity of one submitted request, unique within a server's
/// lifetime. Propagated into every span the request touches (as a
/// [`REQUEST_ID_ARG`] annotation), so
/// `TraceReport::request_timeline(id.0)` reconstructs the request's
/// full lifecycle — admission, queue wait, execution, and (for the
/// group's representative request) the plan stages and device kernel
/// lanes underneath.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission-control bound on queued (not yet running) requests.
    pub queue_capacity: usize,
    /// Distinct [`TransformSpec`]s whose plans stay warm (LRU beyond).
    pub cache_capacity: usize,
    /// Most transforms coalesced into one `execute_many` launch.
    pub max_batch: usize,
    /// Performance tuning applied to every plan the server builds.
    pub tuning: Tuning,
    /// Fault-recovery policy applied to every plan the server builds.
    pub recovery: RecoveryPolicy,
    /// Optional trace session: plans record their lifecycle spans here
    /// and the server exports `serve.*` counters and queue gauges
    /// (Prometheus text via `TraceReport::prometheus`).
    pub trace: Option<Trace>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            cache_capacity: 8,
            max_batch: 8,
            tuning: Tuning::default(),
            recovery: RecoveryPolicy::default(),
            trace: None,
        }
    }
}

impl ServeConfig {
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(NufftError::BadOptions("queue_capacity must be > 0".into()));
        }
        if self.cache_capacity == 0 {
            return Err(NufftError::BadOptions("cache_capacity must be > 0".into()));
        }
        if self.max_batch == 0 {
            return Err(NufftError::BadOptions("max_batch must be > 0".into()));
        }
        self.tuning.validate()?;
        self.recovery.validate()
    }

    /// Attach a trace session (see [`ServeConfig::trace`]).
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        self.trace = Some(trace.clone());
        self
    }
}

/// Cumulative serving statistics, also mirrored as `serve.*` trace
/// counters when a trace is attached.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused with [`NufftError::QueueFull`].
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed with a typed error (including shutdown sweeps).
    pub failed: u64,
    /// Group plan lookups served from the cache (no plan built).
    pub cache_hits: u64,
    /// Group plan lookups that had to build a plan.
    pub cache_misses: u64,
    /// Plans evicted to stay within `cache_capacity`.
    pub cache_evictions: u64,
    /// Groups that reused the plan's already-set points (no re-sort).
    pub setpts_reuses: u64,
    /// `execute_many` launches issued.
    pub batches: u64,
    /// Requests that shared a launch with at least one other request.
    pub coalesced: u64,
    /// Deepest the queue has been.
    pub peak_queue_depth: usize,
}

/// Request metadata that rides beside the payload through the queue:
/// identity for trace correlation, submit time for latency/queue-wait
/// histograms.
#[derive(Copy, Clone)]
struct ReqMeta {
    id: RequestId,
    submitted: Instant,
}

/// One precision-typed request payload; the cell is fulfilled exactly
/// once when the request completes or fails.
struct Payload<T: Real> {
    meta: ReqMeta,
    points: Arc<Points<T>>,
    input: Vec<Complex<T>>,
    cell: Arc<ResponseCell<T>>,
}

/// Precision-erased payload so one queue and one worker serve both
/// `f32` and `f64` requests; the spec's [`Precision`] tag picks the
/// variant back out (enforced at submit time).
enum AnyPayload {
    F32(Payload<f32>),
    F64(Payload<f64>),
}

impl AnyPayload {
    fn points_match(&self, other: &AnyPayload) -> bool {
        match (self, other) {
            (AnyPayload::F32(a), AnyPayload::F32(b)) => points_eq(&a.points, &b.points),
            (AnyPayload::F64(a), AnyPayload::F64(b)) => points_eq(&a.points, &b.points),
            _ => false,
        }
    }

    fn fail(self, err: NufftError) {
        match self {
            AnyPayload::F32(p) => p.cell.fulfill(Err(err)),
            AnyPayload::F64(p) => p.cell.fulfill(Err(err)),
        }
    }

    fn meta(&self) -> ReqMeta {
        match self {
            AnyPayload::F32(p) => p.meta,
            AnyPayload::F64(p) => p.meta,
        }
    }

    fn into_typed<T: Real>(self) -> Payload<T> {
        match self {
            AnyPayload::F32(p) => cast_exact(p),
            AnyPayload::F64(p) => cast_exact(p),
        }
    }
}

/// Precision-erased cached plan; resolved back by the group's spec.
enum AnyPlan {
    F32(Plan<f32>),
    F64(Plan<f64>),
}

fn plan_mut<T: Real>(plan: &mut AnyPlan) -> &mut Plan<T> {
    let any: &mut dyn Any = match plan {
        AnyPlan::F32(p) => p,
        AnyPlan::F64(p) => p,
    };
    any.downcast_mut::<Plan<T>>()
        .expect("cache entry precision matches its spec key")
}

/// Move a value between two types the caller knows are identical (the
/// submit path matches `spec.precision` against `T` before erasing).
fn cast_exact<A: Any, B: Any>(value: A) -> B {
    let boxed: Box<dyn Any> = Box::new(value);
    *boxed
        .downcast::<B>()
        .expect("serve precision dispatch is exact")
}

struct CacheEntry {
    plan: AnyPlan,
    /// Fingerprint of the points currently set on the plan, if any.
    pts_fp: Option<u64>,
}

struct QueuedRequest {
    spec: TransformSpec,
    /// FNV-1a over the coordinate bits: cheap group key; exact equality
    /// is re-verified before requests actually coalesce.
    fp: u64,
    payload: AnyPayload,
}

/// State shared between the client-facing handle and the worker.
struct Shared {
    queue: Queue<QueuedRequest>,
    stats: Mutex<ServeStats>,
    trace: Option<Trace>,
    next_id: AtomicU64,
}

impl Shared {
    fn count(&self, name: &str, delta: i64) {
        if let Some(t) = &self.trace {
            t.counter(name).add(delta);
        }
    }

    fn observe(&self, name: &str, v: f64) {
        if let Some(t) = &self.trace {
            t.histogram(name).observe(v);
        }
    }

    /// Record a completed request-lifecycle interval (admission, queue
    /// wait, execution) carrying the request's correlation id.
    fn request_span(&self, name: &str, id: RequestId, start: Instant, end: Instant) {
        if let Some(t) = &self.trace {
            t.record_span_at(
                name,
                "serve",
                start,
                end,
                &[(REQUEST_ID_ARG, id.to_string())],
            );
        }
    }

    fn depth_gauges(&self, depth: usize) {
        {
            let mut s = self.stats.lock().unwrap();
            s.peak_queue_depth = s.peak_queue_depth.max(depth);
        }
        if let Some(t) = &self.trace {
            t.gauge("serve.queue_depth").set(depth as f64);
            t.gauge("serve.queue_peak").max(depth as f64);
            t.histogram("serve.queue_depth_hist").observe(depth as f64);
        }
    }

    fn note_accept(&self, depth: usize) {
        self.stats.lock().unwrap().accepted += 1;
        self.count("serve.accepted", 1);
        self.depth_gauges(depth);
    }

    fn note_reject(&self) {
        self.stats.lock().unwrap().rejected += 1;
        self.count("serve.rejected", 1);
    }

    fn note_completed(&self, n: usize) {
        self.stats.lock().unwrap().completed += n as u64;
        self.count("serve.completed", n as i64);
    }

    fn note_failed(&self, n: usize) {
        self.stats.lock().unwrap().failed += n as u64;
        self.count("serve.failed", n as i64);
    }

    fn note_cache_hit(&self) {
        self.stats.lock().unwrap().cache_hits += 1;
        self.count("serve.cache_hit", 1);
    }

    fn note_cache_miss(&self) {
        self.stats.lock().unwrap().cache_misses += 1;
        self.count("serve.cache_miss", 1);
    }

    fn note_cache_evict(&self) {
        self.stats.lock().unwrap().cache_evictions += 1;
        self.count("serve.cache_evict", 1);
    }

    fn note_setpts_reuse(&self) {
        self.stats.lock().unwrap().setpts_reuses += 1;
        self.count("serve.setpts_reuse", 1);
    }

    fn note_batch(&self, b: usize) {
        let mut s = self.stats.lock().unwrap();
        s.batches += 1;
        if b > 1 {
            s.coalesced += b as u64;
        }
        drop(s);
        self.count("serve.batches", 1);
        if b > 1 {
            self.count("serve.coalesced", b as i64);
        }
    }
}

/// An async NUFFT service over one simulated device.
///
/// See the crate docs for the full request lifecycle; in short:
/// [`submit`](NufftServer::submit) a [`TransformSpec`] + points +
/// strengths, get back a [`Response`] to `.await` or
/// [`wait`](Response::wait) on.
pub struct NufftServer {
    shared: Arc<Shared>,
    config: ServeConfig,
    worker: Option<JoinHandle<()>>,
}

impl NufftServer {
    /// Spawn the worker thread and start serving on `dev`.
    pub fn start(dev: &Device, config: ServeConfig) -> Result<NufftServer> {
        config.validate()?;
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            stats: Mutex::new(ServeStats::default()),
            trace: config.trace.clone(),
            next_id: AtomicU64::new(1),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let dev = dev.clone();
            let cfg = config.clone();
            thread::Builder::new()
                .name("nufft-serve".into())
                .spawn(move || worker_loop(&shared, &dev, &cfg))
                .map_err(|e| NufftError::BadOptions(format!("cannot spawn serve worker: {e}")))?
        };
        Ok(NufftServer {
            shared,
            config,
            worker: Some(worker),
        })
    }

    /// Submit a transform request without blocking.
    ///
    /// Validates `spec` against the data (precision tag vs `T`,
    /// dimension vs `points`, strengths length vs the spec's input
    /// length for `points.len()` sources) and admission-controls
    /// against the queue: a full queue returns
    /// [`NufftError::QueueFull`] immediately.
    pub fn submit<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
    ) -> Result<Response<T>> {
        let (req, response) = self.make_request(spec, points, input)?;
        let meta = req.payload.meta();
        match self.shared.queue.try_push(req) {
            Ok(depth) => {
                self.shared.note_accept(depth);
                self.shared
                    .request_span("serve.admit", meta.id, meta.submitted, Instant::now());
                Ok(response)
            }
            Err(PushError::Full { depth }) => {
                self.shared.note_reject();
                Err(NufftError::QueueFull {
                    depth,
                    capacity: self.config.queue_capacity,
                })
            }
            Err(PushError::Shutdown) => Err(NufftError::Shutdown),
        }
    }

    /// [`submit`](NufftServer::submit), but park the caller until a
    /// queue slot frees up (blocking backpressure instead of
    /// [`NufftError::QueueFull`]).
    pub fn submit_wait<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
    ) -> Result<Response<T>> {
        let (req, response) = self.make_request(spec, points, input)?;
        let meta = req.payload.meta();
        match self.shared.queue.push_wait(req) {
            Ok(depth) => {
                self.shared.note_accept(depth);
                self.shared
                    .request_span("serve.admit", meta.id, meta.submitted, Instant::now());
                Ok(response)
            }
            Err(_) => Err(NufftError::Shutdown),
        }
    }

    fn make_request<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
    ) -> Result<(QueuedRequest, Response<T>)> {
        spec.validate()?;
        if !spec.matches_precision::<T>() {
            return Err(NufftError::BadSpec(format!(
                "spec requests {} but the request data is {}",
                spec.precision,
                Precision::of::<T>(),
            )));
        }
        if points.dim != spec.dim() {
            return Err(NufftError::BadSpec(format!(
                "spec is {}D but the points are {}D",
                spec.dim(),
                points.dim,
            )));
        }
        let expected = spec.input_len(points.len());
        if input.len() != expected {
            return Err(NufftError::LengthMismatch {
                expected,
                got: input.len(),
            });
        }
        let cell = Arc::new(ResponseCell::<T>::default());
        let meta = ReqMeta {
            id: RequestId(self.shared.next_id.fetch_add(1, Ordering::Relaxed)),
            submitted: Instant::now(),
        };
        let payload = Payload {
            meta,
            points: Arc::clone(points),
            input,
            cell: Arc::clone(&cell),
        };
        let payload = match spec.precision {
            Precision::F32 => AnyPayload::F32(cast_exact(payload)),
            Precision::F64 => AnyPayload::F64(cast_exact(payload)),
        };
        Ok((
            QueuedRequest {
                spec: spec.clone(),
                fp: points_fingerprint(points),
                payload,
            },
            Response::new(cell, meta.id),
        ))
    }

    /// Hold the worker off; submissions keep queueing up to capacity.
    /// Lets callers build a coalescable backlog deterministically.
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Release a paused worker.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Requests queued but not yet picked up by the worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Snapshot of the cumulative serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().unwrap().clone()
    }

    /// SLO/health summary judged against [`SloThresholds::default`].
    /// Latency/saturation quantiles are populated only when the server
    /// was started with a trace attached ([`ServeConfig::with_trace`]).
    pub fn report(&self) -> ServeReport {
        self.report_with(SloThresholds::default())
    }

    /// [`report`](NufftServer::report) with custom thresholds.
    pub fn report_with(&self, slo: SloThresholds) -> ServeReport {
        let trace_report = self.shared.trace.as_ref().map(|t| t.report());
        ServeReport::build(
            self.stats(),
            self.config.queue_capacity,
            trace_report.as_ref(),
            slo,
        )
    }

    /// Stop accepting requests, fail everything still queued with
    /// [`NufftError::Shutdown`], and join the worker. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.queue.shutdown();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NufftServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// FNV-1a over the dimension, length, and coordinate bits: a cheap,
/// deterministic group key for "same nonuniform points".
fn points_fingerprint<T: Real>(points: &Points<T>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(points.dim as u64);
    mix(points.len() as u64);
    for d in 0..points.dim {
        for &x in &points.coords[d] {
            mix(x.to_f64().to_bits());
        }
    }
    h
}

/// Bit-exact point-set equality (fingerprint collisions must never
/// coalesce two genuinely different requests).
fn points_eq<T: Real>(a: &Arc<Points<T>>, b: &Arc<Points<T>>) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    if a.dim != b.dim || a.len() != b.len() {
        return false;
    }
    (0..a.dim).all(|d| {
        a.coords[d]
            .iter()
            .zip(&b.coords[d])
            .all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits())
    })
}

struct Group {
    spec: TransformSpec,
    fp: u64,
    payloads: Vec<AnyPayload>,
}

/// Partition one queue sweep into coalescable groups: same spec, same
/// points fingerprint, and bit-exact same points as the group's first
/// member. First-arrival order of groups is preserved.
fn coalesce(batch: Vec<QueuedRequest>) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    'next: for req in batch {
        for g in groups.iter_mut() {
            if g.spec == req.spec && g.fp == req.fp && g.payloads[0].points_match(&req.payload) {
                g.payloads.push(req.payload);
                continue 'next;
            }
        }
        groups.push(Group {
            spec: req.spec,
            fp: req.fp,
            payloads: vec![req.payload],
        });
    }
    groups
}

fn worker_loop(shared: &Arc<Shared>, dev: &Device, cfg: &ServeConfig) {
    if let Some(t) = &shared.trace {
        // names the worker's row in the Chrome export ("nufft-serve")
        t.register_thread();
    }
    let mut cache: LruCache<TransformSpec, CacheEntry> = LruCache::new(cfg.cache_capacity);
    while let Some(batch) = shared.queue.pop_all() {
        shared.depth_gauges(shared.queue.len());
        let picked = Instant::now();
        for req in &batch {
            let meta = req.payload.meta();
            shared.request_span("serve.queue", meta.id, meta.submitted, picked);
            shared.observe(
                "serve.queue_wait",
                picked
                    .saturating_duration_since(meta.submitted)
                    .as_secs_f64(),
            );
        }
        for group in coalesce(batch) {
            match group.spec.precision {
                Precision::F32 => run_group::<f32>(shared, dev, cfg, &mut cache, group),
                Precision::F64 => run_group::<f64>(shared, dev, cfg, &mut cache, group),
            }
        }
    }
    // shutdown: fail everything that never started, so no Response
    // waiter is left hanging
    for req in shared.queue.drain() {
        shared.note_failed(1);
        req.payload.fail(NufftError::Shutdown);
    }
}

/// Serve one coalesced group at its concrete precision: resolve the
/// plan (cache hit or build), set points if they changed, then execute
/// in `max_batch`-sized stacked launches.
fn run_group<T: Real>(
    shared: &Shared,
    dev: &Device,
    cfg: &ServeConfig,
    cache: &mut LruCache<TransformSpec, CacheEntry>,
    group: Group,
) {
    let Group { spec, fp, payloads } = group;
    let mut payloads: Vec<Payload<T>> = payloads
        .into_iter()
        .map(AnyPayload::into_typed::<T>)
        .collect();

    // One open span per group, tagged with the representative (first)
    // request's id: every plan.* host span and device-lane kernel the
    // group triggers parents under it, so request_timeline reaches all
    // the way down to the device.
    let rep_id = payloads[0].meta.id;
    let _group_span = shared
        .trace
        .as_ref()
        .map(|t| t.span_with("serve.group", &[(REQUEST_ID_ARG, rep_id.to_string())]));

    if cache.contains(&spec) {
        shared.note_cache_hit();
    } else {
        shared.note_cache_miss();
        let built = PlanBuilder::<T>::from_spec(&spec).and_then(|builder| {
            let mut builder = builder
                .tuning(cfg.tuning)
                .recovery(cfg.recovery)
                .max_batch(cfg.max_batch);
            if let Some(t) = &shared.trace {
                builder = builder.tracing(t);
            }
            builder.build(dev)
        });
        match built {
            Ok(plan) => {
                let plan = match spec.precision {
                    Precision::F32 => AnyPlan::F32(cast_exact(plan)),
                    Precision::F64 => AnyPlan::F64(cast_exact(plan)),
                };
                if cache
                    .insert(spec.clone(), CacheEntry { plan, pts_fp: None })
                    .is_some()
                {
                    shared.note_cache_evict();
                }
            }
            Err(e) => {
                fail_all(shared, payloads, e.at_stage("plan.build"));
                return;
            }
        }
    }

    let entry = cache
        .get_mut(&spec)
        .expect("plan was just resolved or inserted");

    let rep_points = Arc::clone(&payloads[0].points);
    if entry.pts_fp == Some(fp) {
        shared.note_setpts_reuse();
    } else {
        entry.pts_fp = None;
        if let Err(e) = plan_mut::<T>(&mut entry.plan).set_pts(&rep_points) {
            fail_all(shared, payloads, e.at_stage("plan.setpts"));
            return;
        }
        entry.pts_fp = Some(fp);
    }
    let plan = plan_mut::<T>(&mut entry.plan);

    let m = rep_points.len();
    let in_per = spec.input_len(m);
    let out_per = spec.output_len(m);
    while !payloads.is_empty() {
        let take = payloads.len().min(cfg.max_batch);
        let chunk: Vec<Payload<T>> = payloads.drain(..take).collect();
        let b = chunk.len();
        let mut input = Vec::with_capacity(in_per * b);
        for p in &chunk {
            input.extend_from_slice(&p.input);
        }
        let mut output = vec![Complex::<T>::ZERO; out_per * b];
        shared.observe("serve.batch_size", b as f64);
        let chunk_start = Instant::now();
        match plan.execute_many(&input, &mut output) {
            Ok(()) => {
                let done = Instant::now();
                // stats before fulfill: a waiter woken by the fulfill
                // must already see this chunk counted
                shared.note_batch(b);
                shared.note_completed(b);
                for (i, p) in chunk.into_iter().enumerate() {
                    shared.request_span("serve.execute", p.meta.id, chunk_start, done);
                    shared.observe(
                        "serve.latency",
                        done.saturating_duration_since(p.meta.submitted)
                            .as_secs_f64(),
                    );
                    p.cell
                        .fulfill(Ok(output[i * out_per..(i + 1) * out_per].to_vec()));
                }
            }
            Err(e) => {
                // fail only this chunk; the plan (and its recovery
                // state) stays cached and the worker keeps serving
                fail_all(shared, chunk, e.at_stage("plan.execute"));
            }
        }
    }
}

fn fail_all<T: Real>(shared: &Shared, payloads: Vec<Payload<T>>, err: NufftError) {
    // stats before fulfill, for the same wake-ordering reason as the
    // success path
    shared.note_failed(payloads.len());
    for p in payloads {
        p.cell.fulfill(Err(err.clone()));
    }
}
