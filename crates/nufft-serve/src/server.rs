//! The plan server: one supervised worker thread owning a device and
//! an LRU plan cache, fed by a bounded submission queue with load
//! shedding, deadlines, and per-spec circuit breakers.
//!
//! Request flow:
//!
//! 1. [`NufftServer::submit`] validates the [`TransformSpec`] against
//!    the request data, checks the request's optional deadline, and
//!    admission-controls against the **shed controller**: the
//!    effective depth limit shrinks below the physical queue capacity
//!    when recent queue waits exceed the configured p90 target, so
//!    latency stays bounded under overload
//!    ([`NufftError::Overloaded`] / [`NufftError::QueueFull`] — use
//!    [`NufftServer::submit_wait`] for blocking backpressure), and
//!    returns a [`Response`] future (which can be
//!    [`cancel`](Response::cancel)led).
//! 2. The worker drains the queue in one sweep, drops expired or
//!    cancelled requests (typed `DeadlineExceeded`/`Cancelled`, no
//!    device work), and **coalesces** the rest: requests with the same
//!    spec *and* the same nonuniform points (fingerprint-grouped, then
//!    verified bit-exactly) form one group, executed as stacked
//!    [`Plan::execute_many`] batches of at most `max_batch` vectors —
//!    riding the plan's two-stream pipeline, with results bitwise
//!    identical to sequential execution.
//! 3. The plan for each group comes from an LRU cache keyed by the
//!    `TransformSpec` itself: a cache hit skips plan construction
//!    entirely (no `plan.build` span is emitted), and if the group's
//!    points fingerprint matches the plan's current points, `set_pts`
//!    is skipped too.
//! 4. Device faults surface through each plan's recovery layer; a
//!    fault that survives bounded retry fails *only the requests in
//!    that chunk* with a typed [`NufftError::Request`] chain (stage +
//!    root cause). A **persistent** fault additionally quarantines the
//!    cached plan (the next same-spec request rebuilds) and advances
//!    the spec's **circuit breaker** ([`BreakerPolicy`]): after a
//!    streak, matching requests are fast-failed — or degraded, per
//!    [`Brownout`] — for a cooldown in simulated time.
//! 5. The worker runs under a supervisor: a panic fails the poisoned
//!    in-flight batch with [`NufftError::WorkerPanic`] and respawns
//!    the worker (fresh plan cache and breakers) within a restart
//!    budget ([`SupervisorPolicy`](crate::SupervisorPolicy)).

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use cufinufft::{degraded_method_for, Plan, PlanBuilder, RecoveryPolicy, Tuning};
use gpu_sim::Device;
use nufft_common::{
    Complex, ModeOrder, NufftError, NufftPlan, Points, Precision, Real, Result, TransformSpec,
};
use nufft_trace::{Trace, REQUEST_ID_ARG};

use crate::breaker::{BreakerDecision, BreakerPolicy, BreakerSet, Brownout};
use crate::future::{Response, ResponseCell};
use crate::lru::LruCache;
use crate::queue::{PushError, Queue};
use crate::report::{ServeReport, SloThresholds};
use crate::supervisor::SupervisorPolicy;

/// Identity of one submitted request, unique within a server's
/// lifetime. Propagated into every span the request touches (as a
/// [`REQUEST_ID_ARG`] annotation), so
/// `TraceReport::request_timeline(id.0)` reconstructs the request's
/// full lifecycle — admission, queue wait, execution, and (for the
/// group's representative request) the plan stages and device kernel
/// lanes underneath.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Load-shedding policy for the non-blocking admission path.
///
/// The controller computes an *effective* queue-depth limit from the
/// recent queue-wait history (a sliding window of wall-clock
/// `serve.queue_wait` samples): while the window's p90 stays at or
/// under `target_queue_wait_p90`, the limit is the full queue
/// capacity and behaviour matches plain [`NufftError::QueueFull`]
/// admission. Once waits blow past the target, the limit scales down
/// proportionally (`capacity × target / p90`, floored at
/// `min_limit`), so excess demand is rejected *early* with
/// [`NufftError::Overloaded`] instead of queueing behind work that
/// cannot meet its latency goal anyway.
#[derive(Copy, Clone, Debug)]
pub struct ShedPolicy {
    /// Master switch; `false` restores pure capacity-bounded admission.
    pub enabled: bool,
    /// Target p90 queue wait in wall-clock seconds.
    pub target_queue_wait_p90: f64,
    /// The effective depth limit never sheds below this.
    pub min_limit: usize,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            enabled: true,
            target_queue_wait_p90: 0.25,
            min_limit: 1,
        }
    }
}

impl ShedPolicy {
    pub fn validate(&self) -> Result<()> {
        if self.enabled && self.target_queue_wait_p90 <= 0.0 {
            return Err(NufftError::BadOptions(
                "shed target_queue_wait_p90 must be > 0".into(),
            ));
        }
        if self.enabled && self.min_limit == 0 {
            return Err(NufftError::BadOptions("shed min_limit must be > 0".into()));
        }
        Ok(())
    }
}

/// Per-request submission options; everything defaults to "no limit".
#[derive(Copy, Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Absolute deadline in **simulated seconds** (the
    /// `Device::clock()` domain). Checked at admission, at dequeue,
    /// and between coalesced chunks; once passed, the request resolves
    /// to [`NufftError::DeadlineExceeded`] without touching a device.
    pub deadline: Option<f64>,
}

impl SubmitOptions {
    /// Options carrying an absolute simulated-time deadline.
    pub fn with_deadline(deadline: f64) -> Self {
        SubmitOptions {
            deadline: Some(deadline),
        }
    }
}

/// A test/chaos hook invoked on the worker thread immediately before
/// each `execute_many` launch (after breaker admission, with the spec
/// about to run). Panics thrown here exercise the supervisor path
/// exactly like a kernel bug would.
#[derive(Clone)]
pub struct ChaosHook(pub Arc<dyn Fn(&TransformSpec) + Send + Sync>);

impl ChaosHook {
    pub fn new(f: impl Fn(&TransformSpec) + Send + Sync + 'static) -> Self {
        ChaosHook(Arc::new(f))
    }
}

impl std::fmt::Debug for ChaosHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ChaosHook(..)")
    }
}

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission-control bound on queued (not yet running) requests.
    pub queue_capacity: usize,
    /// Distinct [`TransformSpec`]s whose plans stay warm (LRU beyond).
    pub cache_capacity: usize,
    /// Most transforms coalesced into one `execute_many` launch.
    pub max_batch: usize,
    /// Performance tuning applied to every plan the server builds.
    pub tuning: Tuning,
    /// Fault-recovery policy applied to every plan the server builds.
    pub recovery: RecoveryPolicy,
    /// Load-shedding policy for the non-blocking admission path.
    pub shed: ShedPolicy,
    /// Per-spec circuit-breaker policy (see [`BreakerPolicy`]).
    pub breaker: BreakerPolicy,
    /// Worker restart budget (see [`SupervisorPolicy`](crate::SupervisorPolicy)).
    pub supervisor: SupervisorPolicy,
    /// Optional trace session: plans record their lifecycle spans here
    /// and the server exports `serve.*` counters and queue gauges
    /// (Prometheus text via `TraceReport::prometheus`).
    pub trace: Option<Trace>,
    /// Optional fault-injection hook run before every chunk launch.
    pub chaos_hook: Option<ChaosHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            cache_capacity: 8,
            max_batch: 8,
            tuning: Tuning::default(),
            recovery: RecoveryPolicy::default(),
            shed: ShedPolicy::default(),
            breaker: BreakerPolicy::default(),
            supervisor: SupervisorPolicy::default(),
            trace: None,
            chaos_hook: None,
        }
    }
}

impl ServeConfig {
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(NufftError::BadOptions("queue_capacity must be > 0".into()));
        }
        if self.cache_capacity == 0 {
            return Err(NufftError::BadOptions("cache_capacity must be > 0".into()));
        }
        if self.max_batch == 0 {
            return Err(NufftError::BadOptions("max_batch must be > 0".into()));
        }
        if self.breaker.enabled && self.breaker.failure_streak == 0 {
            return Err(NufftError::BadOptions(
                "breaker failure_streak must be > 0".into(),
            ));
        }
        if self.breaker.enabled && self.breaker.cooldown < 0.0 {
            return Err(NufftError::BadOptions(
                "breaker cooldown must be >= 0".into(),
            ));
        }
        self.shed.validate()?;
        self.tuning.validate()?;
        self.recovery.validate()
    }

    /// Attach a trace session (see [`ServeConfig::trace`]).
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        self.trace = Some(trace.clone());
        self
    }
}

/// Cumulative serving statistics, also mirrored as `serve.*` trace
/// counters when a trace is attached.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused with [`NufftError::QueueFull`].
    pub rejected: u64,
    /// Requests refused early by the shed controller
    /// ([`NufftError::Overloaded`]).
    pub shed: u64,
    /// Requests resolved with [`NufftError::DeadlineExceeded`]
    /// (at admission, dequeue, or a chunk boundary).
    pub deadline_exceeded: u64,
    /// Requests resolved with [`NufftError::Cancelled`] before
    /// execution started.
    pub cancelled: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed with a typed error (including shutdown sweeps).
    pub failed: u64,
    /// Group plan lookups served from the cache (no plan built).
    pub cache_hits: u64,
    /// Group plan lookups that had to build a plan.
    pub cache_misses: u64,
    /// Plans evicted to stay within `cache_capacity`.
    pub cache_evictions: u64,
    /// Plans evicted because a request failed with a persistent device
    /// fault (the next same-spec request rebuilds).
    pub quarantined: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
    /// Requests fast-failed by an open breaker without device work.
    pub breaker_fastfails: u64,
    /// Requests served degraded (method override or CPU fallback)
    /// while their breaker was open.
    pub brownouts: u64,
    /// Worker panics caught by the supervisor.
    pub worker_panics: u64,
    /// Worker respawns performed by the supervisor.
    pub worker_respawns: u64,
    /// Breakers currently open or half-open (a gauge, not cumulative).
    pub open_breakers: usize,
    /// Groups that reused the plan's already-set points (no re-sort).
    pub setpts_reuses: u64,
    /// `execute_many` launches issued.
    pub batches: u64,
    /// Requests that shared a launch with at least one other request.
    pub coalesced: u64,
    /// Deepest the queue has been.
    pub peak_queue_depth: usize,
}

/// Request metadata that rides beside the payload through the queue:
/// identity for trace correlation, submit time for latency/queue-wait
/// histograms, optional deadline in simulated seconds.
#[derive(Copy, Clone)]
struct ReqMeta {
    id: RequestId,
    submitted: Instant,
    deadline: Option<f64>,
}

/// One precision-typed request payload; the cell is fulfilled exactly
/// once when the request completes or fails.
struct Payload<T: Real> {
    meta: ReqMeta,
    points: Arc<Points<T>>,
    input: Vec<Complex<T>>,
    cell: Arc<ResponseCell<T>>,
}

/// Precision-erased payload so one queue and one worker serve both
/// `f32` and `f64` requests; the spec's [`Precision`] tag picks the
/// variant back out (enforced at submit time).
enum AnyPayload {
    F32(Payload<f32>),
    F64(Payload<f64>),
}

impl AnyPayload {
    fn points_match(&self, other: &AnyPayload) -> bool {
        match (self, other) {
            (AnyPayload::F32(a), AnyPayload::F32(b)) => points_eq(&a.points, &b.points),
            (AnyPayload::F64(a), AnyPayload::F64(b)) => points_eq(&a.points, &b.points),
            _ => false,
        }
    }

    fn fail(self, err: NufftError) {
        match self {
            AnyPayload::F32(p) => p.cell.fulfill(Err(err)),
            AnyPayload::F64(p) => p.cell.fulfill(Err(err)),
        }
    }

    fn meta(&self) -> ReqMeta {
        match self {
            AnyPayload::F32(p) => p.meta,
            AnyPayload::F64(p) => p.meta,
        }
    }

    fn is_cancelled(&self) -> bool {
        match self {
            AnyPayload::F32(p) => p.cell.is_cancelled(),
            AnyPayload::F64(p) => p.cell.is_cancelled(),
        }
    }

    fn is_settled(&self) -> bool {
        match self {
            AnyPayload::F32(p) => p.cell.is_settled(),
            AnyPayload::F64(p) => p.cell.is_settled(),
        }
    }

    fn cell_handle(&self) -> AnyCell {
        match self {
            AnyPayload::F32(p) => AnyCell::F32(Arc::clone(&p.cell)),
            AnyPayload::F64(p) => AnyCell::F64(Arc::clone(&p.cell)),
        }
    }

    fn into_typed<T: Real>(self) -> Payload<T> {
        match self {
            AnyPayload::F32(p) => cast_exact(p),
            AnyPayload::F64(p) => cast_exact(p),
        }
    }
}

/// Precision-erased handle to one response cell, kept in the
/// in-flight registry so the supervisor can fail a poisoned batch
/// after the worker (which owned the payloads) has died.
pub(crate) enum AnyCell {
    F32(Arc<ResponseCell<f32>>),
    F64(Arc<ResponseCell<f64>>),
}

impl AnyCell {
    /// Whether the cell already holds an outcome.
    pub(crate) fn is_settled(&self) -> bool {
        match self {
            AnyCell::F32(c) => c.is_settled(),
            AnyCell::F64(c) => c.is_settled(),
        }
    }

    /// Fulfill with `err` unless the cell already settled; returns
    /// whether this call delivered the failure (for stats accuracy).
    pub(crate) fn fail_if_unsettled(&self, err: NufftError) -> bool {
        match self {
            AnyCell::F32(c) => {
                if c.is_settled() {
                    return false;
                }
                c.fulfill(Err(err));
                true
            }
            AnyCell::F64(c) => {
                if c.is_settled() {
                    return false;
                }
                c.fulfill(Err(err));
                true
            }
        }
    }
}

/// Precision-erased cached plan; resolved back by the group's spec.
enum AnyPlan {
    F32(Plan<f32>),
    F64(Plan<f64>),
}

fn plan_mut<T: Real>(plan: &mut AnyPlan) -> &mut Plan<T> {
    let any: &mut dyn Any = match plan {
        AnyPlan::F32(p) => p,
        AnyPlan::F64(p) => p,
    };
    any.downcast_mut::<Plan<T>>()
        .expect("cache entry precision matches its spec key")
}

/// Move a value between two types the caller knows are identical (the
/// submit path matches `spec.precision` against `T` before erasing).
fn cast_exact<A: Any, B: Any>(value: A) -> B {
    let boxed: Box<dyn Any> = Box::new(value);
    *boxed
        .downcast::<B>()
        .expect("serve precision dispatch is exact")
}

struct CacheEntry {
    plan: AnyPlan,
    /// Fingerprint of the points currently set on the plan, if any.
    pts_fp: Option<u64>,
}

pub(crate) struct QueuedRequest {
    spec: TransformSpec,
    /// FNV-1a over the coordinate bits: cheap group key; exact equality
    /// is re-verified before requests actually coalesce.
    fp: u64,
    payload: AnyPayload,
}

impl QueuedRequest {
    /// Whether this request's response cell already holds an outcome.
    pub(crate) fn is_settled(&self) -> bool {
        self.payload.is_settled()
    }

    /// Fail this never-started request with [`NufftError::Shutdown`]
    /// (the supervisor's final sweep when the restart budget is spent).
    /// Returns whether this call delivered the failure.
    pub(crate) fn fail_shutdown(self) -> bool {
        if self.payload.is_settled() {
            return false;
        }
        self.payload.fail(NufftError::Shutdown);
        true
    }
}

/// Sliding window of recent queue-wait samples (wall-clock seconds)
/// feeding the shed controller's p90 estimate.
struct ShedWindow {
    samples: Vec<f64>,
    next: usize,
}

const SHED_WINDOW: usize = 64;

impl ShedWindow {
    fn new() -> Self {
        ShedWindow {
            samples: Vec::with_capacity(SHED_WINDOW),
            next: 0,
        }
    }

    fn push(&mut self, v: f64) {
        if self.samples.len() < SHED_WINDOW {
            self.samples.push(v);
        } else {
            self.samples[self.next] = v;
        }
        self.next = (self.next + 1) % SHED_WINDOW;
    }

    fn p90(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() as f64) * 0.9).ceil() as usize;
        Some(sorted[idx.min(sorted.len()) - 1])
    }
}

/// State shared between the client-facing handle and the worker.
pub(crate) struct Shared {
    pub(crate) queue: Queue<QueuedRequest>,
    stats: Mutex<ServeStats>,
    trace: Option<Trace>,
    next_id: AtomicU64,
    shed_window: Mutex<ShedWindow>,
    /// Response cells of the batch the worker currently holds; the
    /// supervisor blanket-fails these after a panic (first writer
    /// wins, so cells the worker already fulfilled are unaffected).
    pub(crate) in_flight: Mutex<Vec<AnyCell>>,
}

impl Shared {
    fn count(&self, name: &str, delta: i64) {
        if let Some(t) = &self.trace {
            t.counter(name).add(delta);
        }
    }

    fn observe(&self, name: &str, v: f64) {
        if let Some(t) = &self.trace {
            t.histogram(name).observe(v);
        }
    }

    /// Record a completed request-lifecycle interval (admission, queue
    /// wait, execution) carrying the request's correlation id.
    fn request_span(&self, name: &str, id: RequestId, start: Instant, end: Instant) {
        if let Some(t) = &self.trace {
            t.record_span_at(
                name,
                "serve",
                start,
                end,
                &[(REQUEST_ID_ARG, id.to_string())],
            );
        }
    }

    fn depth_gauges(&self, depth: usize) {
        {
            let mut s = self.stats.lock().unwrap();
            s.peak_queue_depth = s.peak_queue_depth.max(depth);
        }
        if let Some(t) = &self.trace {
            t.gauge("serve.queue_depth").set(depth as f64);
            t.gauge("serve.queue_peak").max(depth as f64);
            t.histogram("serve.queue_depth_hist").observe(depth as f64);
        }
    }

    fn note_accept(&self, depth: usize) {
        self.stats.lock().unwrap().accepted += 1;
        self.count("serve.accepted", 1);
        self.depth_gauges(depth);
    }

    fn note_reject(&self) {
        self.stats.lock().unwrap().rejected += 1;
        self.count("serve.rejected", 1);
    }

    fn note_shed(&self) {
        self.stats.lock().unwrap().shed += 1;
        self.count("serve.shed", 1);
    }

    fn note_deadline(&self, n: usize) {
        self.stats.lock().unwrap().deadline_exceeded += n as u64;
        self.count("serve.deadline_exceeded", n as i64);
    }

    fn note_cancelled(&self, n: usize) {
        self.stats.lock().unwrap().cancelled += n as u64;
        self.count("serve.cancelled", n as i64);
    }

    fn note_completed(&self, n: usize) {
        self.stats.lock().unwrap().completed += n as u64;
        self.count("serve.completed", n as i64);
    }

    pub(crate) fn note_failed(&self, n: usize) {
        self.stats.lock().unwrap().failed += n as u64;
        self.count("serve.failed", n as i64);
    }

    fn note_cache_hit(&self) {
        self.stats.lock().unwrap().cache_hits += 1;
        self.count("serve.cache_hit", 1);
    }

    fn note_cache_miss(&self) {
        self.stats.lock().unwrap().cache_misses += 1;
        self.count("serve.cache_miss", 1);
    }

    fn note_cache_evict(&self) {
        self.stats.lock().unwrap().cache_evictions += 1;
        self.count("serve.cache_evict", 1);
    }

    fn note_quarantine(&self) {
        self.stats.lock().unwrap().quarantined += 1;
        self.count("serve.quarantine", 1);
    }

    fn note_breaker_open(&self) {
        self.stats.lock().unwrap().breaker_opens += 1;
        self.count("serve.breaker_open", 1);
    }

    fn note_breaker_fastfail(&self, n: usize) {
        self.stats.lock().unwrap().breaker_fastfails += n as u64;
        self.count("serve.breaker_fastfail", n as i64);
    }

    fn note_brownout(&self, n: usize) {
        self.stats.lock().unwrap().brownouts += n as u64;
        self.count("serve.brownout", n as i64);
    }

    pub(crate) fn note_worker_panic(&self) {
        self.stats.lock().unwrap().worker_panics += 1;
        self.count("serve.worker_panic", 1);
    }

    pub(crate) fn note_worker_respawn(&self) {
        self.stats.lock().unwrap().worker_respawns += 1;
        self.count("serve.worker_respawn", 1);
    }

    fn set_breaker_gauge(&self, open: usize) {
        self.stats.lock().unwrap().open_breakers = open;
        if let Some(t) = &self.trace {
            t.gauge("serve.breaker_state").set(open as f64);
        }
    }

    fn note_setpts_reuse(&self) {
        self.stats.lock().unwrap().setpts_reuses += 1;
        self.count("serve.setpts_reuse", 1);
    }

    fn note_batch(&self, b: usize) {
        let mut s = self.stats.lock().unwrap();
        s.batches += 1;
        if b > 1 {
            s.coalesced += b as u64;
        }
        drop(s);
        self.count("serve.batches", 1);
        if b > 1 {
            self.count("serve.coalesced", b as i64);
        }
    }

    /// Record a queue-wait sample in both the trace histogram and the
    /// shed controller's window.
    fn observe_queue_wait(&self, v: f64) {
        self.observe("serve.queue_wait", v);
        self.shed_window.lock().unwrap().push(v);
    }

    /// The shed controller's current effective depth limit.
    fn shed_limit(&self, policy: &ShedPolicy, capacity: usize) -> usize {
        if !policy.enabled {
            return capacity;
        }
        match self.shed_window.lock().unwrap().p90() {
            Some(p90) if p90 > policy.target_queue_wait_p90 => {
                let scaled = (capacity as f64 * policy.target_queue_wait_p90 / p90) as usize;
                scaled.max(policy.min_limit).min(capacity)
            }
            _ => capacity,
        }
    }
}

/// An async NUFFT service over one simulated device.
///
/// See the crate docs for the full request lifecycle; in short:
/// [`submit`](NufftServer::submit) a [`TransformSpec`] + points +
/// strengths, get back a [`Response`] to `.await` or
/// [`wait`](Response::wait) on.
pub struct NufftServer {
    shared: Arc<Shared>,
    config: ServeConfig,
    dev: Device,
    worker: Option<JoinHandle<()>>,
}

impl NufftServer {
    /// Spawn the supervised worker thread and start serving on `dev`.
    pub fn start(dev: &Device, config: ServeConfig) -> Result<NufftServer> {
        config.validate()?;
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            stats: Mutex::new(ServeStats::default()),
            trace: config.trace.clone(),
            next_id: AtomicU64::new(1),
            shed_window: Mutex::new(ShedWindow::new()),
            in_flight: Mutex::new(Vec::new()),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let dev = dev.clone();
            let cfg = config.clone();
            thread::Builder::new()
                .name("nufft-serve".into())
                .spawn(move || crate::supervisor::supervise(&shared, &dev, &cfg))
                .map_err(|e| NufftError::BadOptions(format!("cannot spawn serve worker: {e}")))?
        };
        Ok(NufftServer {
            shared,
            config,
            dev: dev.clone(),
            worker: Some(worker),
        })
    }

    /// Submit a transform request without blocking.
    ///
    /// Validates `spec` against the data (precision tag vs `T`,
    /// dimension vs `points`, strengths length vs the spec's input
    /// length for `points.len()` sources) and admission-controls
    /// against the shed controller and queue: overload returns
    /// [`NufftError::Overloaded`] or [`NufftError::QueueFull`]
    /// immediately.
    pub fn submit<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
    ) -> Result<Response<T>> {
        self.submit_opts(spec, points, input, SubmitOptions::default())
    }

    /// [`submit`](NufftServer::submit) with per-request options
    /// (deadline).
    pub fn submit_opts<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
        opts: SubmitOptions,
    ) -> Result<Response<T>> {
        self.check_deadline(opts)?;
        let limit = self
            .shared
            .shed_limit(&self.config.shed, self.config.queue_capacity);
        let depth = self.shared.queue.len();
        if depth >= limit && limit < self.config.queue_capacity {
            self.shared.note_shed();
            return Err(NufftError::Overloaded {
                depth,
                limit,
                capacity: self.config.queue_capacity,
            });
        }
        let (req, response) = self.make_request(spec, points, input, opts)?;
        let meta = req.payload.meta();
        match self.shared.queue.try_push(req) {
            Ok(depth) => {
                self.shared.note_accept(depth);
                self.shared
                    .request_span("serve.admit", meta.id, meta.submitted, Instant::now());
                Ok(response)
            }
            Err(PushError::Full { depth }) => {
                self.shared.note_reject();
                Err(NufftError::QueueFull {
                    depth,
                    capacity: self.config.queue_capacity,
                })
            }
            Err(PushError::Shutdown) => Err(NufftError::Shutdown),
        }
    }

    /// [`submit`](NufftServer::submit), but park the caller until a
    /// queue slot frees up (blocking backpressure instead of
    /// [`NufftError::QueueFull`]). The shed controller does not apply
    /// here: a caller who opted into blocking has already accepted the
    /// wait.
    pub fn submit_wait<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
    ) -> Result<Response<T>> {
        self.submit_wait_opts(spec, points, input, SubmitOptions::default())
    }

    /// [`submit_wait`](NufftServer::submit_wait) with per-request
    /// options (deadline).
    pub fn submit_wait_opts<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
        opts: SubmitOptions,
    ) -> Result<Response<T>> {
        self.check_deadline(opts)?;
        let (req, response) = self.make_request(spec, points, input, opts)?;
        let meta = req.payload.meta();
        match self.shared.queue.push_wait(req) {
            Ok(depth) => {
                self.shared.note_accept(depth);
                self.shared
                    .request_span("serve.admit", meta.id, meta.submitted, Instant::now());
                Ok(response)
            }
            Err(_) => Err(NufftError::Shutdown),
        }
    }

    /// Admission-time deadline check: an already-expired request never
    /// allocates a response or touches the queue.
    fn check_deadline(&self, opts: SubmitOptions) -> Result<()> {
        if let Some(deadline) = opts.deadline {
            let now = self.dev.clock();
            if now >= deadline {
                self.shared.note_deadline(1);
                return Err(NufftError::DeadlineExceeded { deadline, now });
            }
            self.shared.observe("serve.deadline_slack", deadline - now);
        }
        Ok(())
    }

    fn make_request<T: Real>(
        &self,
        spec: &TransformSpec,
        points: &Arc<Points<T>>,
        input: Vec<Complex<T>>,
        opts: SubmitOptions,
    ) -> Result<(QueuedRequest, Response<T>)> {
        spec.validate()?;
        if !spec.matches_precision::<T>() {
            return Err(NufftError::BadSpec(format!(
                "spec requests {} but the request data is {}",
                spec.precision,
                Precision::of::<T>(),
            )));
        }
        if points.dim != spec.dim() {
            return Err(NufftError::BadSpec(format!(
                "spec is {}D but the points are {}D",
                spec.dim(),
                points.dim,
            )));
        }
        let expected = spec.input_len(points.len());
        if input.len() != expected {
            return Err(NufftError::LengthMismatch {
                expected,
                got: input.len(),
            });
        }
        let cell = Arc::new(ResponseCell::<T>::default());
        let meta = ReqMeta {
            id: RequestId(self.shared.next_id.fetch_add(1, Ordering::Relaxed)),
            submitted: Instant::now(),
            deadline: opts.deadline,
        };
        let payload = Payload {
            meta,
            points: Arc::clone(points),
            input,
            cell: Arc::clone(&cell),
        };
        let payload = match spec.precision {
            Precision::F32 => AnyPayload::F32(cast_exact(payload)),
            Precision::F64 => AnyPayload::F64(cast_exact(payload)),
        };
        Ok((
            QueuedRequest {
                spec: spec.clone(),
                fp: points_fingerprint(points),
                payload,
            },
            Response::new(cell, meta.id),
        ))
    }

    /// Hold the worker off; submissions keep queueing up to capacity.
    /// Lets callers build a coalescable backlog deterministically.
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Release a paused worker.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Requests queued but not yet picked up by the worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Snapshot of the cumulative serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().unwrap().clone()
    }

    /// SLO/health summary judged against [`SloThresholds::default`].
    /// Latency/saturation quantiles are populated only when the server
    /// was started with a trace attached ([`ServeConfig::with_trace`]).
    pub fn report(&self) -> ServeReport {
        self.report_with(SloThresholds::default())
    }

    /// [`report`](NufftServer::report) with custom thresholds.
    pub fn report_with(&self, slo: SloThresholds) -> ServeReport {
        let trace_report = self.shared.trace.as_ref().map(|t| t.report());
        ServeReport::build(
            self.stats(),
            self.config.queue_capacity,
            trace_report.as_ref(),
            slo,
        )
    }

    /// Stop accepting requests, fail everything still queued with
    /// [`NufftError::Shutdown`], and join the worker. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Graceful variant of [`shutdown`](NufftServer::shutdown): stop
    /// admission immediately, let the worker finish everything already
    /// queued, and hard-stop after `timeout` wall-clock time. Returns
    /// `true` when the backlog drained fully within the timeout;
    /// `false` when the timeout hit and leftovers were failed with
    /// [`NufftError::Shutdown`]. Either way, every outstanding
    /// [`Response`] resolves.
    pub fn drain(mut self, timeout: Duration) -> bool {
        self.shared.queue.close();
        let deadline = Instant::now() + timeout;
        let drained = loop {
            match &self.worker {
                None => break true,
                Some(h) if h.is_finished() => break true,
                Some(_) if Instant::now() >= deadline => break false,
                Some(_) => thread::sleep(Duration::from_millis(1)),
            }
        };
        // hard-stop: a no-op when the worker already exited cleanly
        self.shutdown_impl();
        drained
    }

    fn shutdown_impl(&mut self) {
        self.shared.queue.shutdown();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NufftServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// FNV-1a over the dimension, length, and coordinate bits: a cheap,
/// deterministic group key for "same nonuniform points".
fn points_fingerprint<T: Real>(points: &Points<T>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(points.dim as u64);
    mix(points.len() as u64);
    for d in 0..points.dim {
        for &x in &points.coords[d] {
            mix(x.to_f64().to_bits());
        }
    }
    h
}

/// Bit-exact point-set equality (fingerprint collisions must never
/// coalesce two genuinely different requests).
fn points_eq<T: Real>(a: &Arc<Points<T>>, b: &Arc<Points<T>>) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    if a.dim != b.dim || a.len() != b.len() {
        return false;
    }
    (0..a.dim).all(|d| {
        a.coords[d]
            .iter()
            .zip(&b.coords[d])
            .all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits())
    })
}

struct Group {
    spec: TransformSpec,
    fp: u64,
    payloads: Vec<AnyPayload>,
}

/// Partition one queue sweep into coalescable groups: same spec, same
/// points fingerprint, and bit-exact same points as the group's first
/// member. First-arrival order of groups is preserved.
fn coalesce(batch: Vec<QueuedRequest>) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    'next: for req in batch {
        for g in groups.iter_mut() {
            if g.spec == req.spec && g.fp == req.fp && g.payloads[0].points_match(&req.payload) {
                g.payloads.push(req.payload);
                continue 'next;
            }
        }
        groups.push(Group {
            spec: req.spec,
            fp: req.fp,
            payloads: vec![req.payload],
        });
    }
    groups
}

/// Whether `err`'s root cause should advance a circuit breaker, and if
/// so whether it counts as persistent. Validation errors and the like
/// return `None`: they indicate a bad request, not a poisoned device
/// path.
fn breaker_class(err: &NufftError) -> Option<bool> {
    match err.root_cause() {
        NufftError::DeviceFault { persistent, .. } => Some(*persistent),
        // an OOM streak poisons the spec just as surely: the same
        // allocation sizes will fail again
        NufftError::DeviceOom { .. } => Some(true),
        _ => None,
    }
}

/// Record `failed` requests going down with `err` against `spec`'s
/// breaker. The streak advances once per failed *request*, not per
/// group — otherwise coalescing would make opening depend on how
/// traffic happened to batch. Must run *before* the failing cells are
/// fulfilled, so a waiter the failure wakes already sees the breaker
/// counters and gauge it caused.
fn breaker_note_failure(
    shared: &Shared,
    breakers: &mut BreakerSet,
    spec: &TransformSpec,
    err: &NufftError,
    now: f64,
    failed: usize,
) {
    if let Some(persistent) = breaker_class(err) {
        for _ in 0..failed.max(1) {
            if breakers.on_failure(spec, persistent, now) {
                shared.note_breaker_open();
            }
        }
    } else {
        // a non-device failure still proves the path works; don't
        // leave a half-open breaker stuck
        breakers.on_success(spec);
    }
    shared.set_breaker_gauge(breakers.open_count());
}

/// Record a successful execution against `spec`'s breaker. Must run
/// *before* the successful cells are fulfilled, for the same
/// visibility reason as [`breaker_note_failure`].
fn breaker_note_success(shared: &Shared, breakers: &mut BreakerSet, spec: &TransformSpec) {
    breakers.on_success(spec);
    shared.set_breaker_gauge(breakers.open_count());
}

pub(crate) fn worker_loop(shared: &Arc<Shared>, dev: &Device, cfg: &ServeConfig) {
    if let Some(t) = &shared.trace {
        // names the worker's row in the Chrome export ("nufft-serve")
        t.register_thread();
    }
    let mut cache: LruCache<TransformSpec, CacheEntry> = LruCache::new(cfg.cache_capacity);
    let mut breakers = BreakerSet::new(cfg.breaker);
    while let Some(batch) = shared.queue.pop_all() {
        shared.depth_gauges(shared.queue.len());
        // register the batch before any work: if the worker dies
        // mid-batch the supervisor fails exactly these cells
        {
            let mut inf = shared.in_flight.lock().unwrap();
            inf.clear();
            inf.extend(batch.iter().map(|r| r.payload.cell_handle()));
        }
        let picked = Instant::now();
        let now = dev.clock();
        let mut live = Vec::with_capacity(batch.len());
        for req in batch {
            let meta = req.payload.meta();
            shared.request_span("serve.queue", meta.id, meta.submitted, picked);
            shared.observe_queue_wait(
                picked
                    .saturating_duration_since(meta.submitted)
                    .as_secs_f64(),
            );
            // dequeue-time checks: cancelled or expired requests
            // resolve right here, without any device work
            if req.payload.is_cancelled() {
                shared.note_cancelled(1);
                req.payload.fail(NufftError::Cancelled);
                continue;
            }
            if let Some(deadline) = meta.deadline {
                if now >= deadline {
                    shared.note_deadline(1);
                    shared.note_failed(1);
                    req.payload
                        .fail(NufftError::DeadlineExceeded { deadline, now });
                    continue;
                }
            }
            live.push(req);
        }
        for group in coalesce(live) {
            serve_group(shared, dev, cfg, &mut cache, &mut breakers, group);
        }
        shared.in_flight.lock().unwrap().clear();
    }
    // shutdown: fail everything that never started, so no Response
    // waiter is left hanging (cancelled requests resolve as cancelled,
    // already-settled ones are skipped so stats stay accurate)
    for req in shared.queue.drain() {
        if req.payload.is_settled() {
            continue;
        }
        if req.payload.is_cancelled() {
            shared.note_cancelled(1);
            req.payload.fail(NufftError::Cancelled);
        } else {
            shared.note_failed(1);
            req.payload.fail(NufftError::Shutdown);
        }
    }
}

/// Route one coalesced group through its spec's circuit breaker, then
/// record the outcome and refresh the breaker gauge.
fn serve_group(
    shared: &Shared,
    dev: &Device,
    cfg: &ServeConfig,
    cache: &mut LruCache<TransformSpec, CacheEntry>,
    breakers: &mut BreakerSet,
    group: Group,
) {
    let spec = group.spec.clone();
    match breakers.admit(&spec, dev.clock()) {
        BreakerDecision::Execute | BreakerDecision::Trial => match spec.precision {
            Precision::F32 => run_group::<f32>(shared, dev, cfg, cache, breakers, group),
            Precision::F64 => run_group::<f64>(shared, dev, cfg, cache, breakers, group),
        },
        BreakerDecision::FastFail { retry_after } => {
            brownout_group(shared, dev, cfg, cache, breakers, group, retry_after);
        }
    }
}

/// Serve a group whose breaker is open: degrade per the configured
/// [`Brownout`] mode, falling back to a typed fast-fail.
fn brownout_group(
    shared: &Shared,
    dev: &Device,
    cfg: &ServeConfig,
    cache: &mut LruCache<TransformSpec, CacheEntry>,
    breakers: &mut BreakerSet,
    group: Group,
    retry_after: f64,
) {
    let spec = group.spec.clone();
    let n = group.payloads.len();
    match cfg.breaker.brownout {
        Brownout::MethodOverride => {
            if let Some(method) = degraded_method_for(&spec) {
                // key the degraded plan under the degraded spec: the
                // original spec's cache slot stays empty/quarantined,
                // so post-cooldown requests rebuild the real plan and
                // stay bit-exact with a direct build
                let degraded = spec.clone().method(method);
                shared.note_brownout(n);
                let group = Group {
                    spec: degraded.clone(),
                    fp: group.fp,
                    payloads: group.payloads,
                };
                match degraded.precision {
                    Precision::F32 => run_group::<f32>(shared, dev, cfg, cache, breakers, group),
                    Precision::F64 => run_group::<f64>(shared, dev, cfg, cache, breakers, group),
                }
                return;
            }
        }
        Brownout::Cpu => {
            // the CPU backend has no modeord support; other orderings
            // fall through to fast-fail
            if spec.modeord == ModeOrder::Centered {
                shared.note_brownout(n);
                match spec.precision {
                    Precision::F32 => run_cpu_group::<f32>(shared, dev, &spec, group.payloads),
                    Precision::F64 => run_cpu_group::<f64>(shared, dev, &spec, group.payloads),
                }
                return;
            }
        }
        Brownout::FailFast => {}
    }
    shared.note_breaker_fastfail(n);
    shared.note_failed(n);
    let err = NufftError::BreakerOpen {
        spec: spec.label(),
        retry_after,
    };
    for p in group.payloads {
        p.fail(err.clone());
    }
}

/// Serve one coalesced group at its concrete precision: resolve the
/// plan (cache hit or build), set points if they changed, then execute
/// in `max_batch`-sized stacked launches.
fn run_group<T: Real>(
    shared: &Shared,
    dev: &Device,
    cfg: &ServeConfig,
    cache: &mut LruCache<TransformSpec, CacheEntry>,
    breakers: &mut BreakerSet,
    group: Group,
) {
    let Group { spec, fp, payloads } = group;
    let mut payloads: Vec<Payload<T>> = payloads
        .into_iter()
        .map(AnyPayload::into_typed::<T>)
        .collect();

    // One open span per group, tagged with the representative (first)
    // request's id: every plan.* host span and device-lane kernel the
    // group triggers parents under it, so request_timeline reaches all
    // the way down to the device.
    let rep_id = payloads[0].meta.id;
    let _group_span = shared
        .trace
        .as_ref()
        .map(|t| t.span_with("serve.group", &[(REQUEST_ID_ARG, rep_id.to_string())]));

    if cache.contains(&spec) {
        shared.note_cache_hit();
    } else {
        shared.note_cache_miss();
        let built = PlanBuilder::<T>::from_spec(&spec).and_then(|builder| {
            let mut builder = builder
                .tuning(cfg.tuning)
                .recovery(cfg.recovery)
                .max_batch(cfg.max_batch);
            if let Some(t) = &shared.trace {
                builder = builder.tracing(t);
            }
            builder.build(dev)
        });
        match built {
            Ok(plan) => {
                let plan = match spec.precision {
                    Precision::F32 => AnyPlan::F32(cast_exact(plan)),
                    Precision::F64 => AnyPlan::F64(cast_exact(plan)),
                };
                if cache
                    .insert(spec.clone(), CacheEntry { plan, pts_fp: None })
                    .is_some()
                {
                    shared.note_cache_evict();
                }
            }
            Err(e) => {
                breaker_note_failure(shared, breakers, &spec, &e, dev.clock(), payloads.len());
                fail_all(shared, payloads, e.at_stage("plan.build"));
                return;
            }
        }
    }

    let entry = cache
        .get_mut(&spec)
        .expect("plan was just resolved or inserted");

    let rep_points = Arc::clone(&payloads[0].points);
    if entry.pts_fp == Some(fp) {
        shared.note_setpts_reuse();
    } else {
        entry.pts_fp = None;
        if let Err(e) = plan_mut::<T>(&mut entry.plan).set_pts(&rep_points) {
            quarantine_if_poisoned(shared, cache, &spec, &e);
            breaker_note_failure(shared, breakers, &spec, &e, dev.clock(), payloads.len());
            fail_all(shared, payloads, e.at_stage("plan.setpts"));
            return;
        }
        entry.pts_fp = Some(fp);
    }

    let m = rep_points.len();
    let in_per = spec.input_len(m);
    let out_per = spec.output_len(m);
    while !payloads.is_empty() {
        let take = payloads.len().min(cfg.max_batch);
        let mut chunk: Vec<Payload<T>> = payloads.drain(..take).collect();
        // chunk-boundary checks: drop members that were cancelled or
        // expired while earlier chunks ran
        let now = dev.clock();
        chunk.retain(|p| {
            if p.cell.is_cancelled() {
                shared.note_cancelled(1);
                p.cell.fulfill(Err(NufftError::Cancelled));
                return false;
            }
            if let Some(deadline) = p.meta.deadline {
                if now >= deadline {
                    shared.note_deadline(1);
                    shared.note_failed(1);
                    p.cell
                        .fulfill(Err(NufftError::DeadlineExceeded { deadline, now }));
                    return false;
                }
            }
            true
        });
        if chunk.is_empty() {
            continue;
        }
        let b = chunk.len();
        let mut input = Vec::with_capacity(in_per * b);
        for p in &chunk {
            input.extend_from_slice(&p.input);
        }
        let mut output = vec![Complex::<T>::ZERO; out_per * b];
        shared.observe("serve.batch_size", b as f64);
        if let Some(hook) = &cfg.chaos_hook {
            (hook.0)(&spec);
        }
        let chunk_start = Instant::now();
        let plan = plan_mut::<T>(&mut cache.get_mut(&spec).expect("plan stays resident").plan);
        match plan.execute_many(&input, &mut output) {
            Ok(()) => {
                let done = Instant::now();
                // stats before fulfill: a waiter woken by the fulfill
                // must already see this chunk counted
                shared.note_batch(b);
                shared.note_completed(b);
                breaker_note_success(shared, breakers, &spec);
                for (i, p) in chunk.into_iter().enumerate() {
                    shared.request_span("serve.execute", p.meta.id, chunk_start, done);
                    shared.observe(
                        "serve.latency",
                        done.saturating_duration_since(p.meta.submitted)
                            .as_secs_f64(),
                    );
                    p.cell
                        .fulfill(Ok(output[i * out_per..(i + 1) * out_per].to_vec()));
                }
            }
            Err(e) => {
                // fail only this chunk; a transient fault leaves the
                // plan (and its recovery state) cached, a persistent
                // one quarantines it so the next request rebuilds
                quarantine_if_poisoned(shared, cache, &spec, &e);
                // if the plan was quarantined, remaining chunks would
                // re-fail identically off a rebuilt plan: take them
                // down now with the same cause
                let rest: Vec<Payload<T>> = if cache.contains(&spec) {
                    Vec::new()
                } else {
                    std::mem::take(&mut payloads)
                };
                breaker_note_failure(shared, breakers, &spec, &e, dev.clock(), b + rest.len());
                fail_all(shared, chunk, e.clone().at_stage("plan.execute"));
                if !rest.is_empty() {
                    fail_all(shared, rest, e.at_stage("plan.execute"));
                }
            }
        }
    }
}

/// Evict the cached plan when `err` proves it is poisoned (a
/// persistent device fault): the next same-spec request rebuilds from
/// scratch instead of re-failing off the cache.
fn quarantine_if_poisoned(
    shared: &Shared,
    cache: &mut LruCache<TransformSpec, CacheEntry>,
    spec: &TransformSpec,
    err: &NufftError,
) {
    if matches!(
        err.root_cause(),
        NufftError::DeviceFault {
            persistent: true,
            ..
        }
    ) && cache.remove(spec).is_some()
    {
        shared.note_quarantine();
    }
}

/// CPU-brownout execution: serve the group on the `finufft-cpu`
/// backend via the cross-backend [`NufftPlan`] trait. Plans are built
/// per group (never cached — the GPU plan cache must keep serving
/// bit-exact GPU results once the breaker closes).
fn run_cpu_group<T: Real>(
    shared: &Shared,
    dev: &Device,
    spec: &TransformSpec,
    payloads: Vec<AnyPayload>,
) {
    let mut payloads: Vec<Payload<T>> = payloads
        .into_iter()
        .map(AnyPayload::into_typed::<T>)
        .collect();
    let rep_id = payloads[0].meta.id;
    let _group_span = shared
        .trace
        .as_ref()
        .map(|t| t.span_with("serve.group_cpu", &[(REQUEST_ID_ARG, rep_id.to_string())]));

    let opts = finufft_cpu::Opts {
        fine_sizing: spec.fine_sizing,
        ..finufft_cpu::Opts::default()
    };
    let mut plan =
        match finufft_cpu::Plan::<T>::new(spec.ttype, &spec.modes, spec.iflag, spec.eps, opts) {
            Ok(p) => p,
            Err(e) => {
                fail_all(shared, payloads, e.at_stage("plan.build"));
                return;
            }
        };
    let rep_points = Arc::clone(&payloads[0].points);
    if let Err(e) = plan.set_points(&rep_points) {
        fail_all(shared, payloads, e.at_stage("plan.setpts"));
        return;
    }
    let m = rep_points.len();
    let in_per = spec.input_len(m);
    let out_per = spec.output_len(m);
    let now = dev.clock();
    payloads.retain(|p| {
        if p.cell.is_cancelled() {
            shared.note_cancelled(1);
            p.cell.fulfill(Err(NufftError::Cancelled));
            return false;
        }
        if let Some(deadline) = p.meta.deadline {
            if now >= deadline {
                shared.note_deadline(1);
                shared.note_failed(1);
                p.cell
                    .fulfill(Err(NufftError::DeadlineExceeded { deadline, now }));
                return false;
            }
        }
        true
    });
    if payloads.is_empty() {
        return;
    }
    let b = payloads.len();
    let mut input = Vec::with_capacity(in_per * b);
    for p in &payloads {
        input.extend_from_slice(&p.input);
    }
    let mut output = vec![Complex::<T>::ZERO; out_per * b];
    shared.observe("serve.batch_size", b as f64);
    let chunk_start = Instant::now();
    match plan.execute_many(&input, &mut output) {
        Ok(()) => {
            let done = Instant::now();
            shared.note_batch(b);
            shared.note_completed(b);
            for (i, p) in payloads.into_iter().enumerate() {
                shared.request_span("serve.execute", p.meta.id, chunk_start, done);
                shared.observe(
                    "serve.latency",
                    done.saturating_duration_since(p.meta.submitted)
                        .as_secs_f64(),
                );
                p.cell
                    .fulfill(Ok(output[i * out_per..(i + 1) * out_per].to_vec()));
            }
        }
        Err(e) => {
            fail_all(shared, payloads, e.at_stage("plan.execute"));
        }
    }
}

fn fail_all<T: Real>(shared: &Shared, payloads: Vec<Payload<T>>, err: NufftError) {
    // stats before fulfill, for the same wake-ordering reason as the
    // success path
    shared.note_failed(payloads.len());
    for p in payloads {
        p.cell.fulfill(Err(err.clone()));
    }
}
