//! The response half of a submitted request.
//!
//! [`Response`] is both a blocking handle ([`Response::wait`]) and a
//! `std::future::Future`, so callers can `.await` it on any executor —
//! including this crate's own std-only [`block_on`](crate::block_on).
//! The server fulfills the shared cell exactly once from its worker
//! thread; fulfillment wakes both styles of waiter (condvar for
//! blockers, stored [`Waker`] for pollers).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

use nufft_common::{Complex, NufftError, Real, Result};

use crate::server::RequestId;

/// Shared completion slot between the server worker and one `Response`.
pub(crate) struct ResponseCell<T: Real> {
    state: Mutex<CellState<T>>,
    done: Condvar,
    /// Set by [`Response::cancel`]; the worker checks it at dequeue and
    /// at chunk boundaries and resolves the cell with
    /// [`NufftError::Cancelled`] instead of executing.
    cancelled: AtomicBool,
}

struct CellState<T: Real> {
    result: Option<Result<Vec<Complex<T>>>>,
    waker: Option<Waker>,
}

impl<T: Real> Default for ResponseCell<T> {
    fn default() -> Self {
        ResponseCell {
            state: Mutex::new(CellState {
                result: None,
                waker: None,
            }),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }
}

impl<T: Real> ResponseCell<T> {
    /// Deliver the outcome; wakes a blocking waiter and/or a polled
    /// future. Later calls are ignored (first writer wins), so a
    /// shutdown sweep can safely re-fail an already-failed request.
    pub(crate) fn fulfill(&self, result: Result<Vec<Complex<T>>>) {
        let waker = {
            let mut st = self.state.lock().unwrap();
            if st.result.is_some() {
                return;
            }
            st.result = Some(result);
            st.waker.take()
        };
        self.done.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// True once a cancellation was requested (the request may still
    /// complete if execution had already begun).
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// True once the cell holds an outcome (taken or not).
    pub(crate) fn is_settled(&self) -> bool {
        self.state.lock().unwrap().result.is_some()
    }
}

/// Handle to one in-flight transform request.
///
/// Await it (`response.await`) or block on it ([`Response::wait`]); both
/// yield the transform output or the typed [`NufftError`] the request
/// failed with.
pub struct Response<T: Real> {
    cell: Arc<ResponseCell<T>>,
    id: RequestId,
    taken: bool,
}

impl<T: Real> Response<T> {
    pub(crate) fn new(cell: Arc<ResponseCell<T>>, id: RequestId) -> Self {
        Response {
            cell,
            id,
            taken: false,
        }
    }

    /// The server-assigned identity of this request; pass its `.0` to
    /// `TraceReport::request_timeline` to reconstruct the request's
    /// admission → queue → execute lifecycle from an attached trace.
    pub fn request_id(&self) -> RequestId {
        self.id
    }

    /// Block the calling thread until the request completes.
    pub fn wait(mut self) -> Result<Vec<Complex<T>>> {
        self.taken = true;
        let mut st = self.cell.state.lock().unwrap();
        loop {
            if let Some(result) = st.result.take() {
                return result;
            }
            st = self.cell.done.wait(st).unwrap();
        }
    }

    /// The outcome if already available, without blocking; `None` while
    /// the request is still in flight.
    pub fn try_take(&mut self) -> Option<Result<Vec<Complex<T>>>> {
        let taken = self.cell.state.lock().unwrap().result.take();
        if taken.is_some() {
            self.taken = true;
        }
        taken
    }

    /// Ask the server to drop this request. Best-effort: if the worker
    /// has not started it, the response resolves to
    /// [`NufftError::Cancelled`] without touching a device; if execution
    /// already began, the transform completes normally. The handle stays
    /// usable — `wait()`/`.await` after `cancel()` observes whichever
    /// outcome won.
    pub fn cancel(&self) {
        self.cell.cancelled.store(true, Ordering::Release);
    }

    /// True once [`Response::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cell.is_cancelled()
    }
}

impl<T: Real> std::fmt::Debug for Response<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self.cell.state.lock().unwrap().result.is_some();
        f.debug_struct("Response")
            .field("id", &self.id)
            .field("ready", &ready)
            .finish()
    }
}

impl<T: Real> Future for Response<T> {
    type Output = Result<Vec<Complex<T>>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut st = this.cell.state.lock().unwrap();
        if let Some(result) = st.result.take() {
            this.taken = true;
            return Poll::Ready(result);
        }
        if this.taken {
            // polled again after Ready: surface a typed error rather
            // than hanging a waker that will never fire again
            return Poll::Ready(Err(NufftError::Shutdown));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn wait_blocks_until_fulfilled() {
        let cell = Arc::new(ResponseCell::<f32>::default());
        let resp = Response::new(Arc::clone(&cell), RequestId(1));
        let h = thread::spawn(move || resp.wait());
        thread::sleep(Duration::from_millis(10));
        cell.fulfill(Ok(vec![Complex::new(1.0, 2.0)]));
        let out = h.join().unwrap().unwrap();
        assert_eq!(out, vec![Complex::new(1.0, 2.0)]);
    }

    #[test]
    fn first_fulfillment_wins() {
        let cell = Arc::new(ResponseCell::<f64>::default());
        let mut resp = Response::new(Arc::clone(&cell), RequestId(2));
        cell.fulfill(Err(NufftError::PointsNotSet));
        cell.fulfill(Ok(vec![]));
        assert_eq!(resp.try_take(), Some(Err(NufftError::PointsNotSet)));
    }

    #[test]
    fn try_take_is_none_while_pending() {
        let cell = Arc::new(ResponseCell::<f32>::default());
        let mut resp = Response::new(Arc::clone(&cell), RequestId(3));
        assert!(resp.try_take().is_none());
        assert_eq!(resp.request_id(), RequestId(3));
        cell.fulfill(Ok(vec![]));
        assert_eq!(resp.try_take(), Some(Ok(vec![])));
    }

    #[test]
    fn cancel_flag_is_visible_and_does_not_settle() {
        let cell = Arc::new(ResponseCell::<f32>::default());
        let resp = Response::new(Arc::clone(&cell), RequestId(9));
        assert!(!resp.is_cancelled());
        assert!(!cell.is_settled());
        resp.cancel();
        assert!(resp.is_cancelled());
        assert!(cell.is_cancelled());
        // cancel only raises the flag; the worker resolves the cell
        assert!(!cell.is_settled());
        cell.fulfill(Err(NufftError::Cancelled));
        assert!(cell.is_settled());
        assert_eq!(resp.wait(), Err(NufftError::Cancelled));
    }

    #[test]
    fn future_resolves_via_block_on() {
        let cell = Arc::new(ResponseCell::<f32>::default());
        let resp = Response::new(Arc::clone(&cell), RequestId(4));
        let fulfiller = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            cell.fulfill(Ok(vec![Complex::new(3.0, 4.0)]));
        });
        let out = crate::block_on(resp).unwrap();
        assert_eq!(out, vec![Complex::new(3.0, 4.0)]);
        fulfiller.join().unwrap();
    }
}
