//! SLO summary and health verdict over a running [`NufftServer`].
//!
//! [`ServeReport`] condenses the server's cumulative [`ServeStats`] and
//! (when a trace is attached) the `serve.*` histograms into the four
//! signals an operator watches: **availability** (fraction of finished
//! requests that succeeded), **latency** (end-to-end submit→fulfill
//! quantiles), **saturation** (queue-depth quantiles against capacity),
//! and **efficiency** (plan-cache hit ratio, device-fault recovery
//! rate). The configured [`SloThresholds`] turn those signals into a
//! [`Health`] verdict plus a human-readable list of breaches.
//!
//! [`NufftServer`]: crate::NufftServer
//! [`ServeStats`]: crate::ServeStats

use std::fmt;

use nufft_trace::TraceReport;

use crate::server::ServeStats;

/// Three-state operator verdict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Health {
    /// All SLOs met.
    Healthy,
    /// Serving correctly but an operational SLO (latency or
    /// saturation) is breached.
    Degraded,
    /// The availability SLO is breached: requests are failing.
    Unhealthy,
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        })
    }
}

/// Service-level objectives the report judges against.
#[derive(Copy, Clone, Debug)]
pub struct SloThresholds {
    /// Minimum fraction of finished requests that must have succeeded.
    pub min_availability: f64,
    /// Upper bound on the p99 end-to-end request latency, in seconds.
    pub max_p99_latency_s: f64,
    /// Upper bound on the p90 queue depth as a fraction of the queue
    /// capacity.
    pub max_saturation: f64,
    /// Upper bound on the fraction of arrivals refused by the shed
    /// controller (`shed / (accepted + rejected + shed)`).
    pub max_shed_rate: f64,
}

impl Default for SloThresholds {
    fn default() -> Self {
        SloThresholds {
            min_availability: 0.99,
            max_p99_latency_s: 0.5,
            max_saturation: 0.8,
            max_shed_rate: 0.05,
        }
    }
}

impl SloThresholds {
    pub fn validate_range(&self) -> bool {
        (0.0..=1.0).contains(&self.min_availability)
            && self.max_p99_latency_s > 0.0
            && self.max_saturation > 0.0
            && (0.0..=1.0).contains(&self.max_shed_rate)
    }
}

/// Latency quantile summary in seconds; `None` when the corresponding
/// histogram recorded no samples (e.g. no trace attached).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LatencySummary {
    pub p50: Option<f64>,
    pub p90: Option<f64>,
    pub p99: Option<f64>,
    pub p999: Option<f64>,
}

impl LatencySummary {
    fn from_hist(report: Option<&TraceReport>, name: &str) -> LatencySummary {
        let Some(h) = report.and_then(|r| r.histograms.get(name)) else {
            return LatencySummary::default();
        };
        LatencySummary {
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
            p999: h.p999(),
        }
    }
}

/// Point-in-time SLO/health summary of a server. Build via
/// [`NufftServer::report`](crate::NufftServer::report) or
/// [`ServeReport::build`] from parts.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Snapshot of the cumulative serving counters.
    pub stats: ServeStats,
    /// Completed / (completed + failed); `1.0` before anything finishes.
    pub availability: f64,
    /// Accepted / (accepted + rejected); `1.0` before anything arrives.
    pub admission_ratio: f64,
    /// Cache hits / (hits + misses); `1.0` before any lookup.
    pub cache_hit_ratio: f64,
    /// Recovered / (recovered + unrecovered) device faults from the
    /// `recovery.*` counters; `1.0` when no faults occurred.
    pub recovery_rate: f64,
    /// Device-fault retries observed (`recovery.retries`).
    pub fault_retries: u64,
    /// End-to-end submit→fulfill latency quantiles (`serve.latency`).
    pub latency: LatencySummary,
    /// Queue-wait quantiles (`serve.queue_wait`).
    pub queue_wait: LatencySummary,
    /// Queue-depth quantiles at accept/sweep points
    /// (`serve.queue_depth_hist`); units are requests, not seconds.
    pub queue_depth: LatencySummary,
    /// p90 queue depth / queue capacity; `0.0` with no samples.
    pub saturation: f64,
    /// Shed / (accepted + rejected + shed); `0.0` before any arrival.
    pub shed_rate: f64,
    /// Circuit breakers open or half-open at snapshot time.
    pub open_breakers: usize,
    /// The thresholds this report was judged against.
    pub slo: SloThresholds,
    /// Human-readable description of each breached SLO.
    pub breaches: Vec<String>,
    /// The verdict: availability breach ⇒ [`Health::Unhealthy`];
    /// latency or saturation breach ⇒ [`Health::Degraded`].
    pub health: Health,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

fn counter(report: Option<&TraceReport>, name: &str) -> u64 {
    report
        .and_then(|r| r.counters.get(name))
        .copied()
        .map(|v| v.max(0) as u64)
        .unwrap_or(0)
}

impl ServeReport {
    /// Assemble a report from a stats snapshot, the server's queue
    /// capacity, and (optionally) the attached trace's report.
    pub fn build(
        stats: ServeStats,
        queue_capacity: usize,
        trace: Option<&TraceReport>,
        slo: SloThresholds,
    ) -> ServeReport {
        let availability = ratio(stats.completed, stats.completed + stats.failed);
        let admission_ratio = ratio(stats.accepted, stats.accepted + stats.rejected);
        let cache_hit_ratio = ratio(stats.cache_hits, stats.cache_hits + stats.cache_misses);
        let recovered = counter(trace, "recovery.recovered");
        let unrecovered = counter(trace, "recovery.unrecovered");
        let recovery_rate = ratio(recovered, recovered + unrecovered);
        let fault_retries = counter(trace, "recovery.retries");

        let latency = LatencySummary::from_hist(trace, "serve.latency");
        let queue_wait = LatencySummary::from_hist(trace, "serve.queue_wait");
        let queue_depth = LatencySummary::from_hist(trace, "serve.queue_depth_hist");
        let saturation = match queue_depth.p90 {
            Some(d) if queue_capacity > 0 => d / queue_capacity as f64,
            _ => 0.0,
        };
        let arrivals = stats.accepted + stats.rejected + stats.shed;
        let shed_rate = if arrivals == 0 {
            0.0
        } else {
            stats.shed as f64 / arrivals as f64
        };
        let open_breakers = stats.open_breakers;

        let mut breaches = Vec::new();
        let mut health = Health::Healthy;
        if availability < slo.min_availability {
            breaches.push(format!(
                "availability {:.4} < {:.4}",
                availability, slo.min_availability
            ));
            health = Health::Unhealthy;
        }
        if let Some(p99) = latency.p99 {
            if p99 > slo.max_p99_latency_s {
                breaches.push(format!(
                    "p99 latency {:.4}s > {:.4}s",
                    p99, slo.max_p99_latency_s
                ));
                if health == Health::Healthy {
                    health = Health::Degraded;
                }
            }
        }
        if saturation > slo.max_saturation {
            breaches.push(format!(
                "saturation {:.3} > {:.3} (p90 queue depth / capacity)",
                saturation, slo.max_saturation
            ));
            if health == Health::Healthy {
                health = Health::Degraded;
            }
        }
        if shed_rate > slo.max_shed_rate {
            breaches.push(format!(
                "shed rate {:.4} > {:.4} ({} shed of {} arrivals)",
                shed_rate, slo.max_shed_rate, stats.shed, arrivals
            ));
            if health == Health::Healthy {
                health = Health::Degraded;
            }
        }
        if open_breakers > 0 {
            breaches.push(format!(
                "{open_breakers} circuit breaker(s) open: some specs are fast-failing or degraded"
            ));
            if health == Health::Healthy {
                health = Health::Degraded;
            }
        }

        ServeReport {
            stats,
            availability,
            admission_ratio,
            cache_hit_ratio,
            recovery_rate,
            fault_retries,
            latency,
            queue_wait,
            queue_depth,
            saturation,
            shed_rate,
            open_breakers,
            slo,
            breaches,
            health,
        }
    }

    /// Machine-readable JSON rendering of the report (schema
    /// `nufft-serve-report/v1`), parseable with
    /// `nufft_trace::json::Json::parse`. Missing quantiles render as
    /// `null`.
    pub fn to_json(&self) -> String {
        fn q(v: Option<f64>) -> String {
            match v {
                Some(v) => format!("{v}"),
                None => "null".to_string(),
            }
        }
        fn quants(l: &LatencySummary) -> String {
            format!(
                "{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                q(l.p50),
                q(l.p90),
                q(l.p99),
                q(l.p999)
            )
        }
        let s = &self.stats;
        let breaches: Vec<String> = self
            .breaches
            .iter()
            .map(|b| format!("\"{}\"", b.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"nufft-serve-report/v1\",",
                "\"health\":\"{health}\",",
                "\"availability\":{availability},",
                "\"shed_rate\":{shed_rate},",
                "\"open_breakers\":{open_breakers},",
                "\"saturation\":{saturation},",
                "\"admission_ratio\":{admission_ratio},",
                "\"cache_hit_ratio\":{cache_hit_ratio},",
                "\"recovery_rate\":{recovery_rate},",
                "\"fault_retries\":{fault_retries},",
                "\"latency_s\":{latency},",
                "\"queue_wait_s\":{queue_wait},",
                "\"stats\":{{",
                "\"accepted\":{accepted},\"rejected\":{rejected},\"shed\":{shed},",
                "\"deadline_exceeded\":{deadline_exceeded},\"cancelled\":{cancelled},",
                "\"completed\":{completed},\"failed\":{failed},",
                "\"quarantined\":{quarantined},\"breaker_opens\":{breaker_opens},",
                "\"breaker_fastfails\":{breaker_fastfails},\"brownouts\":{brownouts},",
                "\"worker_panics\":{worker_panics},\"worker_respawns\":{worker_respawns},",
                "\"batches\":{batches},\"coalesced\":{coalesced},",
                "\"peak_queue_depth\":{peak_queue_depth}}},",
                "\"breaches\":[{breaches}]}}"
            ),
            health = self.health,
            availability = self.availability,
            shed_rate = self.shed_rate,
            open_breakers = self.open_breakers,
            saturation = self.saturation,
            admission_ratio = self.admission_ratio,
            cache_hit_ratio = self.cache_hit_ratio,
            recovery_rate = self.recovery_rate,
            fault_retries = self.fault_retries,
            latency = quants(&self.latency),
            queue_wait = quants(&self.queue_wait),
            accepted = s.accepted,
            rejected = s.rejected,
            shed = s.shed,
            deadline_exceeded = s.deadline_exceeded,
            cancelled = s.cancelled,
            completed = s.completed,
            failed = s.failed,
            quarantined = s.quarantined,
            breaker_opens = s.breaker_opens,
            breaker_fastfails = s.breaker_fastfails,
            brownouts = s.brownouts,
            worker_panics = s.worker_panics,
            worker_respawns = s.worker_respawns,
            batches = s.batches,
            coalesced = s.coalesced,
            peak_queue_depth = s.peak_queue_depth,
            breaches = breaches.join(","),
        )
    }
}

fn fmt_q(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.6}", v),
        None => "-".to_string(),
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serve health: {}", self.health)?;
        writeln!(
            f,
            "  availability {:.4} (completed {} / failed {} / rejected {})",
            self.availability, self.stats.completed, self.stats.failed, self.stats.rejected
        )?;
        writeln!(
            f,
            "  latency s    p50 {} p90 {} p99 {} p999 {}",
            fmt_q(self.latency.p50),
            fmt_q(self.latency.p90),
            fmt_q(self.latency.p99),
            fmt_q(self.latency.p999),
        )?;
        writeln!(
            f,
            "  queue wait s p50 {} p99 {}",
            fmt_q(self.queue_wait.p50),
            fmt_q(self.queue_wait.p99),
        )?;
        writeln!(
            f,
            "  saturation   {:.3} (queue depth p50 {} p90 {}, peak {})",
            self.saturation,
            fmt_q(self.queue_depth.p50),
            fmt_q(self.queue_depth.p90),
            self.stats.peak_queue_depth,
        )?;
        writeln!(
            f,
            "  cache        hit ratio {:.3} ({} hits / {} misses / {} evictions)",
            self.cache_hit_ratio,
            self.stats.cache_hits,
            self.stats.cache_misses,
            self.stats.cache_evictions,
        )?;
        writeln!(
            f,
            "  recovery     rate {:.3} ({} retries)",
            self.recovery_rate, self.fault_retries,
        )?;
        writeln!(
            f,
            "  overload     shed rate {:.4} ({} shed), {} breaker(s) open, {} brownout(s)",
            self.shed_rate, self.stats.shed, self.open_breakers, self.stats.brownouts,
        )?;
        if self.stats.worker_panics > 0 {
            writeln!(
                f,
                "  supervision  {} worker panic(s), {} respawn(s)",
                self.stats.worker_panics, self.stats.worker_respawns,
            )?;
        }
        for b in &self.breaches {
            writeln!(f, "  breach: {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_trace::Trace;

    fn stats(completed: u64, failed: u64) -> ServeStats {
        ServeStats {
            accepted: completed + failed,
            completed,
            failed,
            ..ServeStats::default()
        }
    }

    #[test]
    fn empty_server_is_healthy() {
        let r = ServeReport::build(ServeStats::default(), 64, None, SloThresholds::default());
        assert_eq!(r.health, Health::Healthy);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.latency.p99, None);
        assert!(r.breaches.is_empty());
    }

    #[test]
    fn failures_breach_availability_and_mark_unhealthy() {
        let r = ServeReport::build(stats(90, 10), 64, None, SloThresholds::default());
        assert_eq!(r.health, Health::Unhealthy);
        assert!((r.availability - 0.9).abs() < 1e-12);
        assert_eq!(r.breaches.len(), 1);
        assert!(r.breaches[0].contains("availability"));
    }

    #[test]
    fn slow_p99_marks_degraded_not_unhealthy() {
        let trace = Trace::new();
        let h = trace.histogram("serve.latency");
        for _ in 0..95 {
            h.observe(0.001);
        }
        for _ in 0..5 {
            h.observe(10.0);
        }
        let report = trace.report();
        let r = ServeReport::build(stats(100, 0), 64, Some(&report), SloThresholds::default());
        assert_eq!(r.health, Health::Degraded);
        assert!(r.breaches[0].contains("p99 latency"));
    }

    #[test]
    fn deep_queue_breaches_saturation() {
        let trace = Trace::new();
        let h = trace.histogram("serve.queue_depth_hist");
        for _ in 0..20 {
            h.observe(60.0);
        }
        let report = trace.report();
        let r = ServeReport::build(stats(20, 0), 64, Some(&report), SloThresholds::default());
        assert!(r.saturation > 0.8, "saturation = {}", r.saturation);
        assert_eq!(r.health, Health::Degraded);
    }

    #[test]
    fn recovery_counters_feed_the_rate() {
        let trace = Trace::new();
        trace.counter("recovery.recovered").add(3);
        trace.counter("recovery.unrecovered").add(1);
        trace.counter("recovery.retries").add(5);
        let report = trace.report();
        let r = ServeReport::build(stats(4, 0), 64, Some(&report), SloThresholds::default());
        assert!((r.recovery_rate - 0.75).abs() < 1e-12);
        assert_eq!(r.fault_retries, 5);
    }

    #[test]
    fn display_renders_the_dashboard_lines() {
        let r = ServeReport::build(stats(0, 1), 64, None, SloThresholds::default());
        let text = r.to_string();
        assert!(text.contains("serve health: unhealthy"));
        assert!(text.contains("availability 0.0000"));
        assert!(text.contains("breach: availability"));
        assert!(text.contains("shed rate 0.0000"));
    }

    #[test]
    fn shed_rate_breach_marks_degraded() {
        let s = ServeStats {
            accepted: 80,
            shed: 20,
            completed: 80,
            ..ServeStats::default()
        };
        let r = ServeReport::build(s, 64, None, SloThresholds::default());
        assert!((r.shed_rate - 0.2).abs() < 1e-12);
        assert_eq!(r.health, Health::Degraded);
        assert!(r.breaches.iter().any(|b| b.contains("shed rate")));
    }

    #[test]
    fn open_breakers_mark_degraded() {
        let s = ServeStats {
            accepted: 10,
            completed: 10,
            open_breakers: 2,
            ..ServeStats::default()
        };
        let r = ServeReport::build(s, 64, None, SloThresholds::default());
        assert_eq!(r.health, Health::Degraded);
        assert!(r.breaches.iter().any(|b| b.contains("circuit breaker")));
    }

    #[test]
    fn availability_breach_outranks_overload_breaches() {
        let s = ServeStats {
            accepted: 50,
            shed: 50,
            completed: 10,
            failed: 40,
            open_breakers: 1,
            ..ServeStats::default()
        };
        let r = ServeReport::build(s, 64, None, SloThresholds::default());
        assert_eq!(r.health, Health::Unhealthy);
        assert!(r.breaches.len() >= 3);
    }

    #[test]
    fn json_round_trips_through_the_trace_parser() {
        let s = ServeStats {
            accepted: 9,
            shed: 1,
            completed: 8,
            failed: 1,
            breaker_opens: 1,
            open_breakers: 1,
            ..ServeStats::default()
        };
        let r = ServeReport::build(s, 8, None, SloThresholds::default());
        let json = r.to_json();
        let parsed = nufft_trace::json::Json::parse(&json).expect("report JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("nufft-serve-report/v1")
        );
        assert_eq!(
            parsed.get("health").and_then(|v| v.as_str()),
            Some(r.health.to_string()).as_deref()
        );
        let shed_rate = parsed
            .get("shed_rate")
            .and_then(|v| v.as_f64())
            .expect("shed_rate present");
        assert!((shed_rate - 0.1).abs() < 1e-12);
        let stats = parsed.get("stats").expect("stats object");
        assert_eq!(stats.get("shed").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(
            parsed.get("open_breakers").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        // missing quantiles render as null, not a parse error
        assert!(parsed.get("latency_s").unwrap().get("p99").is_some());
    }
}
