//! NUFFT-as-a-service: an async front end over the workspace's GPU
//! NUFFT plans.
//!
//! The plan lifecycle (`plan` / `setpts` / `execute`) is the right API
//! for a single caller amortizing one geometry, but a *service* sees
//! interleaved requests from many callers. This crate adds the serving
//! layer the paper's library leaves to the user:
//!
//! * **Requests are [`TransformSpec`]s** — the canonical value type
//!   from `nufft-common` describing *what* to compute (type, modes,
//!   tolerance, precision, method, mode order, fine sizing). The same
//!   value is the plan-cache key and what `PlanBuilder::from_spec`
//!   consumes, so "request", "cache identity" and "plan recipe" cannot
//!   drift apart.
//! * **An LRU plan cache** keyed by spec: a repeated spec skips plan
//!   construction entirely (fine-grid sizing, kernel selection, FFT
//!   plan, device allocations), and repeated points on the same spec
//!   skip the bin-sort in `set_pts` too.
//! * **Request coalescing**: each queue sweep groups requests with the
//!   same spec and bit-identical points into stacked
//!   `execute_many` launches (at most `max_batch` per launch), riding
//!   the plan's two-stream pipeline. Batched results are bitwise
//!   identical to sequential execution.
//! * **Admission control and backpressure**: a bounded queue refuses
//!   overflow with [`NufftError::QueueFull`](nufft_common::NufftError)
//!   ([`NufftServer::submit`]) or parks the producer
//!   ([`NufftServer::submit_wait`]); depth/peak gauges and `serve.*`
//!   counters export through the `nufft-trace` Prometheus dump.
//! * **Fault isolation**: device faults ride each plan's recovery
//!   layer; an unrecovered fault fails only the affected requests with
//!   a typed [`NufftError::Request`](nufft_common::NufftError) chain
//!   (stage + root cause) — the queue keeps serving. A *persistent*
//!   fault quarantines the cached plan (the next same-spec request
//!   rebuilds) and feeds the spec's circuit breaker.
//! * **Overload and fault containment** (see `DESIGN.md` §5k): a shed
//!   controller ([`ShedPolicy`]) rejects excess demand early once
//!   recent queue waits blow past target; per-request deadlines
//!   ([`SubmitOptions`]) and [`Response::cancel`] resolve doomed work
//!   without device time; per-spec circuit breakers
//!   ([`BreakerPolicy`]) fast-fail or degrade ([`Brownout`]) specs
//!   with persistent fault streaks; and a supervisor
//!   ([`SupervisorPolicy`]) catches worker panics, fails the poisoned
//!   batch typed, and respawns within a restart budget. Graceful
//!   shutdown ([`NufftServer::drain`]) finishes the backlog first.
//!
//! The async runtime is std-only: [`Response`] implements
//! `std::future::Future`, and [`block_on`] / [`join_all`] drive it
//! without an external executor (any other executor works too).
//!
//! ```
//! use std::sync::Arc;
//! use cufinufft::prelude::*;
//! use gpu_sim::Device;
//! use nufft_common::{gen_points, gen_strengths, PointDist, Shape};
//! use nufft_serve::{NufftServer, ServeConfig};
//!
//! let server = NufftServer::start(&Device::v100(), ServeConfig::default()).unwrap();
//! let spec = TransformSpec::type1(&[32, 32]).eps(1e-5).precision(Precision::F32);
//! let pts = Arc::new(gen_points::<f32>(
//!     PointDist::Rand, 2, 500, Shape::d2(64, 64), 7,
//! ));
//! let strengths = gen_strengths::<f32>(500, 8);
//!
//! let response = server.submit(&spec, &pts, strengths).unwrap();
//! let modes = nufft_serve::block_on(response).unwrap();
//! assert_eq!(modes.len(), 32 * 32);
//! ```

#![forbid(unsafe_code)]

mod breaker;
mod exec;
mod future;
mod lru;
mod queue;
mod report;
mod server;
mod supervisor;

pub use breaker::{BreakerDecision, BreakerPolicy, BreakerSet, BreakerState, Brownout};
pub use exec::{block_on, join_all};
pub use future::Response;
pub use lru::LruCache;
pub use report::{Health, ServeReport, SloThresholds};
pub use server::{
    ChaosHook, NufftServer, RequestId, ServeConfig, ServeStats, ShedPolicy, SubmitOptions,
};
pub use supervisor::SupervisorPolicy;

// The request vocabulary is nufft-common's; re-export it so a serve
// client needs only this crate.
pub use nufft_common::{Method, ModeOrder, Precision, TransformSpec, TransformType};
