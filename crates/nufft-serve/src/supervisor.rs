//! Worker supervision: catch panics, fail the poisoned batch, respawn.
//!
//! The serve worker owns mutable state a panic can leave inconsistent —
//! the LRU plan cache, breaker map, and half-processed batch — so the
//! supervisor never tries to resume it. Instead each respawn runs
//! [`worker_loop`](crate::server::worker_loop) from scratch: a fresh
//! plan cache (plans rebuild on demand; the cache is an optimisation,
//! not state of record) and fresh breakers. Requests the dead worker
//! held in flight are failed with [`NufftError::WorkerPanic`] — unless
//! their cells already settled, so completed work is never retracted —
//! and requests still queued are simply served by the next incarnation.
//!
//! The restart budget bounds crash-looping: once `max_respawns` is
//! spent, the supervisor shuts the queue down, sweeps the backlog with
//! typed failures, and exits. Every outstanding `Response` still
//! resolves; nothing ever hangs.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use gpu_sim::Device;
use nufft_common::NufftError;

use crate::server::{worker_loop, ServeConfig, Shared};

/// Restart policy for the supervised serve worker.
#[derive(Copy, Clone, Debug)]
pub struct SupervisorPolicy {
    /// Worker respawns allowed over the server's lifetime; the budget
    /// exhausting shuts the server down rather than crash-looping.
    pub max_respawns: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy { max_respawns: 3 }
    }
}

/// Extract a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Body of the `nufft-serve` thread: run the worker loop, absorbing
/// panics up to the respawn budget.
pub(crate) fn supervise(shared: &Arc<Shared>, dev: &Device, cfg: &ServeConfig) {
    let mut respawns = 0u32;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| worker_loop(shared, dev, cfg)));
        match outcome {
            // clean exit: shutdown or drain completed
            Ok(()) => return,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                shared.note_worker_panic();
                let exhausted = respawns >= cfg.supervisor.max_respawns;
                if exhausted {
                    // budget exhausted: stop admission *before* failing
                    // the in-flight batch, so a client woken by its
                    // failure deterministically sees Shutdown on resubmit
                    shared.queue.shutdown();
                }
                // fail the batch the dead worker held; cells it already
                // fulfilled are skipped (first writer wins). Stats are
                // counted per cell *before* the fulfill so a waiter the
                // fulfill wakes never reads stale counters — safe from
                // overcounting because the only other fulfiller (the
                // worker) is dead.
                let cells = std::mem::take(&mut *shared.in_flight.lock().unwrap());
                for cell in cells {
                    if cell.is_settled() {
                        continue;
                    }
                    shared.note_failed(1);
                    cell.fail_if_unsettled(NufftError::WorkerPanic(msg.clone()));
                }
                if exhausted {
                    // sweep the backlog so no Response waiter hangs
                    for req in shared.queue.drain() {
                        if req.is_settled() {
                            continue;
                        }
                        shared.note_failed(1);
                        req.fail_shutdown();
                    }
                    return;
                }
                respawns += 1;
                shared.note_worker_respawn();
            }
        }
    }
}
