//! Bounded submission queue with pause/resume, the server's admission
//! control point.
//!
//! * `try_push` is the non-blocking admission path: over capacity it
//!   hands the item back so the caller can return
//!   [`NufftError::QueueFull`](nufft_common::NufftError::QueueFull)
//!   without ever blocking a client.
//! * `push_wait` is the backpressure path: it parks the caller until a
//!   slot frees up (or the queue shuts down).
//! * The worker drains with `pop_all`, taking *everything* queued in one
//!   swap — that batch is the coalescing window.
//! * `pause` holds the worker off without blocking producers, which is
//!   how tests (and drain-style maintenance) deterministically build up
//!   a coalescable backlog.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    paused: bool,
    /// Drain mode: admission refused, but the consumer keeps popping
    /// until the queue is empty (then `pop_all` returns `None`).
    closed: bool,
    shutdown: bool,
}

pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when items arrive, the queue unpauses, or shuts down.
    ready: Condvar,
    /// Signalled when slots free up or the queue shuts down.
    space: Condvar,
    capacity: usize,
}

/// Why a push was refused (the item is dropped; the serve layer keeps
/// the response handle, not the queue).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity, holding `depth` items.
    Full { depth: usize },
    /// Queue shut down.
    Shutdown,
}

impl<T> Queue<T> {
    pub fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                paused: false,
                closed: false,
                shutdown: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Admit `item` if there is room; returns the depth after the push.
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown || inner.closed {
            return Err(PushError::Shutdown);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                depth: inner.items.len(),
            });
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Admit `item`, blocking until a slot frees up. Returns the depth
    /// after the push, or the item back if the queue shuts down first.
    pub fn push_wait(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().unwrap();
        while !inner.shutdown && !inner.closed && inner.items.len() >= self.capacity {
            inner = self.space.wait(inner).unwrap();
        }
        if inner.shutdown || inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Take everything queued, blocking while the queue is empty or
    /// paused. Returns `None` once the queue is shut down (leftovers are
    /// then claimed with [`Queue::drain`]) or once it is closed *and*
    /// empty — so a draining worker exits only after finishing queued
    /// work.
    pub fn pop_all(&self) -> Option<Vec<T>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return None;
            }
            if inner.closed {
                if inner.items.is_empty() {
                    return None;
                }
                // drain mode overrides pause: finish the backlog
                break;
            }
            if !inner.paused && !inner.items.is_empty() {
                break;
            }
            inner = self.ready.wait(inner).unwrap();
        }
        let batch: Vec<T> = inner.items.drain(..).collect();
        drop(inner);
        self.space.notify_all();
        Some(batch)
    }

    /// Hold the consumer off; producers keep enqueueing up to capacity.
    pub fn pause(&self) {
        self.inner.lock().unwrap().paused = true;
    }

    /// Release a paused consumer.
    pub fn resume(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.paused = false;
        drop(inner);
        self.ready.notify_all();
    }

    /// Enter drain mode: refuse new pushes (and unblock `push_wait`
    /// callers, handing their items back) but let the consumer keep
    /// popping until the backlog is empty, after which `pop_all`
    /// returns `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Mark the queue closed and wake every waiter. Subsequent pushes
    /// fail; `pop_all` returns `None`.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutdown = true;
        drop(inner);
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Claim whatever is still queued (used after `shutdown` to fail
    /// unstarted requests instead of leaking their waiters).
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        let batch: Vec<T> = inner.items.drain(..).collect();
        drop(inner);
        self.space.notify_all();
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn try_push_refuses_over_capacity() {
        let q = Queue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full { depth: 2 }));
    }

    #[test]
    fn pop_all_takes_everything_queued() {
        let q = Queue::new(8);
        for i in 0..5 {
            q.try_push(i).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.pop_all().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pause_blocks_consumer_until_resume() {
        let q = Arc::new(Queue::new(8));
        q.pause();
        q.try_push(7).map_err(|_| ()).unwrap();
        let qc = Arc::clone(&q);
        let h = thread::spawn(move || qc.pop_all());
        // consumer must stay parked while paused
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "pop_all ran while paused");
        q.resume();
        assert_eq!(h.join().unwrap(), Some(vec![7]));
    }

    #[test]
    fn shutdown_wakes_consumer_and_refuses_pushes() {
        let q = Arc::new(Queue::new(2));
        let qc = Arc::clone(&q);
        let h = thread::spawn(move || qc.pop_all());
        thread::sleep(Duration::from_millis(10));
        q.shutdown();
        assert_eq!(h.join().unwrap(), None);
        assert_eq!(q.try_push(1), Err(PushError::Shutdown));
    }

    #[test]
    fn push_wait_unblocks_when_consumer_drains() {
        let q = Arc::new(Queue::new(1));
        q.try_push(1).map_err(|_| ()).unwrap();
        let qc = Arc::clone(&q);
        let h = thread::spawn(move || qc.push_wait(2));
        thread::sleep(Duration::from_millis(10));
        assert_eq!(q.pop_all().unwrap(), vec![1]);
        assert_eq!(h.join().unwrap(), Ok(1));
        assert_eq!(q.pop_all().unwrap(), vec![2]);
    }

    #[test]
    fn close_drains_backlog_then_ends_consumer() {
        let q = Queue::new(4);
        q.try_push(1).map_err(|_| ()).unwrap();
        q.try_push(2).map_err(|_| ()).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Shutdown));
        // backlog is still served...
        assert_eq!(q.pop_all().unwrap(), vec![1, 2]);
        // ...and once empty the consumer is released
        assert_eq!(q.pop_all(), None);
    }

    #[test]
    fn close_overrides_pause_and_unblocks_push_wait() {
        let q = Arc::new(Queue::new(1));
        q.pause();
        q.try_push(1).map_err(|_| ()).unwrap();
        let qc = Arc::clone(&q);
        let blocked = thread::spawn(move || qc.push_wait(2));
        thread::sleep(Duration::from_millis(10));
        q.close();
        // the parked producer gets its item back instead of hanging
        assert_eq!(blocked.join().unwrap(), Err(2));
        // the paused consumer still drains the backlog
        assert_eq!(q.pop_all().unwrap(), vec![1]);
        assert_eq!(q.pop_all(), None);
    }

    #[test]
    fn shutdown_leftovers_are_drainable() {
        let q = Queue::new(4);
        q.try_push(1).map_err(|_| ()).unwrap();
        q.try_push(2).map_err(|_| ()).unwrap();
        q.shutdown();
        assert_eq!(q.pop_all(), None);
        assert_eq!(q.drain(), vec![1, 2]);
    }
}
