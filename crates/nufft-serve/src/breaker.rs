//! Per-spec circuit breakers with optional brownout degradation.
//!
//! A breaker is keyed by [`TransformSpec`] — the same value the plan
//! cache keys on — because a persistent device fault is almost always
//! tied to a *plan shape* (a kernel variant, an allocation size), not
//! to the service as a whole. A streak of persistent
//! `DeviceFault`/`DeviceOom` failures opens the breaker; while open,
//! matching requests are fast-failed (or degraded, see [`Brownout`])
//! without touching a device, bounding the blast radius and the queue
//! time wasted on a doomed spec.
//!
//! All breaker time lives in the **simulated clock domain**
//! (`Device::clock()` seconds), like deadlines: cooldowns elapse as
//! simulated work advances the device clock, which keeps chaos tests
//! fully deterministic. A fast-fail itself performs no device work, so
//! an idle server's cooldown only elapses when *other* traffic (or a
//! test's explicit `Device::advance`) moves the clock.
//!
//! State machine (see DESIGN.md §5k):
//!
//! ```text
//!             persistent failure × streak
//!   Closed ────────────────────────────────▶ Open(until = now + cooldown)
//!     ▲  ▲                                     │
//!     │  └──── success (streak reset) ◀─┐      │ clock reaches `until`
//!     │                                 │      ▼
//!     └──── trial succeeds ────────── HalfOpen ──── trial fails ──▶ Open
//! ```

use std::collections::HashMap;
use std::fmt;

use nufft_common::TransformSpec;

/// What to do with requests whose breaker is open.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Brownout {
    /// Reject immediately with `NufftError::BreakerOpen`.
    #[default]
    FailFast,
    /// Re-plan with a degraded spreading method (SM/Auto → GM-sort via
    /// `cufinufft::degraded_method_for`); specs with no cheaper GPU
    /// sibling fall back to fast-fail.
    MethodOverride,
    /// Serve the request on the `finufft-cpu` backend. Only available
    /// for centered mode ordering (the CPU backend has no `modeord`
    /// support); other specs fall back to fast-fail.
    Cpu,
}

/// Tunables for the per-spec breaker set.
#[derive(Copy, Clone, Debug)]
pub struct BreakerPolicy {
    /// Master switch; `false` keeps behaviour identical to PR 7.
    pub enabled: bool,
    /// Consecutive persistent failures that open the breaker.
    pub failure_streak: u32,
    /// How long an opened breaker fast-fails, in simulated seconds.
    pub cooldown: f64,
    /// Degradation mode for requests hitting an open breaker.
    pub brownout: Brownout,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            enabled: true,
            failure_streak: 3,
            // a few times the simulated cost of a mid-size transform:
            // long enough to shed a burst, short enough that ongoing
            // traffic naturally advances the clock past it
            cooldown: 0.05,
            brownout: Brownout::FailFast,
        }
    }
}

/// One spec's breaker state.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BreakerState {
    /// Healthy; counts the current persistent-failure streak.
    Closed { streak: u32 },
    /// Fast-failing until the simulated clock reaches `until`.
    Open { until: f64 },
    /// Cooldown elapsed; exactly one trial request is let through.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed { streak } => write!(f, "closed (streak {streak})"),
            BreakerState::Open { until } => write!(f, "open (until t={until:.6}s)"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Admission decision for one request against its spec's breaker.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BreakerDecision {
    /// Closed: execute normally.
    Execute,
    /// Half-open: execute as the probe; outcome decides re-open vs close.
    Trial,
    /// Open: do not execute; `retry_after` simulated seconds remain.
    FastFail { retry_after: f64 },
}

/// The full breaker map, one entry per spec that has ever failed
/// persistently (specs never seen or never failed carry no entry and
/// admit for free).
#[derive(Debug, Default)]
pub struct BreakerSet {
    states: HashMap<TransformSpec, BreakerState>,
    policy: BreakerPolicy,
}

impl BreakerSet {
    pub fn new(policy: BreakerPolicy) -> Self {
        BreakerSet {
            states: HashMap::new(),
            policy,
        }
    }

    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    /// Decide whether a request for `spec` may execute at simulated
    /// time `now`. Transitions Open → HalfOpen when the cooldown has
    /// elapsed; the caller must report the trial's outcome via
    /// [`on_success`](Self::on_success) / [`on_failure`](Self::on_failure).
    pub fn admit(&mut self, spec: &TransformSpec, now: f64) -> BreakerDecision {
        if !self.policy.enabled {
            return BreakerDecision::Execute;
        }
        match self.states.get(spec).copied() {
            None | Some(BreakerState::Closed { .. }) => BreakerDecision::Execute,
            Some(BreakerState::Open { until }) => {
                if now >= until {
                    self.states.insert(spec.clone(), BreakerState::HalfOpen);
                    BreakerDecision::Trial
                } else {
                    BreakerDecision::FastFail {
                        retry_after: until - now,
                    }
                }
            }
            Some(BreakerState::HalfOpen) => {
                // one probe is already in flight this cooldown cycle;
                // hold others off briefly rather than stampeding
                BreakerDecision::FastFail { retry_after: 0.0 }
            }
        }
    }

    /// Record a successful execution: resets the streak and closes a
    /// half-open breaker.
    pub fn on_success(&mut self, spec: &TransformSpec) {
        if self.states.contains_key(spec) {
            self.states
                .insert(spec.clone(), BreakerState::Closed { streak: 0 });
        }
    }

    /// Record a failed execution at simulated time `now`. Only
    /// `persistent` failures advance the streak (a transient fault that
    /// exhausted its retry budget is bad luck, not a poisoned spec);
    /// either way a half-open trial failure re-opens immediately.
    /// Returns `true` when this call opened the breaker.
    pub fn on_failure(&mut self, spec: &TransformSpec, persistent: bool, now: f64) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let state = self
            .states
            .entry(spec.clone())
            .or_insert(BreakerState::Closed { streak: 0 });
        match *state {
            BreakerState::HalfOpen => {
                *state = BreakerState::Open {
                    until: now + self.policy.cooldown,
                };
                true
            }
            BreakerState::Closed { streak } if persistent => {
                let streak = streak + 1;
                if streak >= self.policy.failure_streak {
                    *state = BreakerState::Open {
                        until: now + self.policy.cooldown,
                    };
                    true
                } else {
                    *state = BreakerState::Closed { streak };
                    false
                }
            }
            BreakerState::Closed { .. } | BreakerState::Open { .. } => false,
        }
    }

    /// Number of breakers currently open or half-open (the gauge the
    /// report and Prometheus export surface).
    pub fn open_count(&self) -> usize {
        self.states
            .values()
            .filter(|s| !matches!(s, BreakerState::Closed { .. }))
            .count()
    }

    /// The state recorded for `spec`, if any.
    pub fn state(&self, spec: &TransformSpec) -> Option<BreakerState> {
        self.states.get(spec).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::Precision;

    fn spec() -> TransformSpec {
        TransformSpec::type1(&[16, 16])
            .eps(1e-4)
            .precision(Precision::F32)
    }

    fn policy(streak: u32, cooldown: f64) -> BreakerPolicy {
        BreakerPolicy {
            enabled: true,
            failure_streak: streak,
            cooldown,
            brownout: Brownout::FailFast,
        }
    }

    #[test]
    fn opens_after_streak_of_persistent_failures() {
        let mut b = BreakerSet::new(policy(3, 1.0));
        let s = spec();
        assert!(!b.on_failure(&s, true, 0.0));
        assert!(!b.on_failure(&s, true, 0.0));
        assert_eq!(b.admit(&s, 0.0), BreakerDecision::Execute);
        assert!(b.on_failure(&s, true, 0.5), "third strike opens");
        match b.admit(&s, 0.6) {
            BreakerDecision::FastFail { retry_after } => {
                assert!((retry_after - 0.9).abs() < 1e-12, "{retry_after}");
            }
            other => panic!("expected fast-fail, got {other:?}"),
        }
        assert_eq!(b.open_count(), 1);
    }

    #[test]
    fn transient_failures_never_advance_the_streak() {
        let mut b = BreakerSet::new(policy(2, 1.0));
        let s = spec();
        for _ in 0..10 {
            assert!(!b.on_failure(&s, false, 0.0));
        }
        assert_eq!(b.admit(&s, 0.0), BreakerDecision::Execute);
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = BreakerSet::new(policy(2, 1.0));
        let s = spec();
        b.on_failure(&s, true, 0.0);
        b.on_success(&s);
        assert!(!b.on_failure(&s, true, 0.0), "streak restarted from 0");
        assert!(b.on_failure(&s, true, 0.0));
    }

    #[test]
    fn half_open_trial_closes_on_success_and_reopens_on_failure() {
        let mut b = BreakerSet::new(policy(1, 1.0));
        let s = spec();
        assert!(b.on_failure(&s, true, 0.0));
        // cooldown not elapsed: fast-fail
        assert!(matches!(b.admit(&s, 0.5), BreakerDecision::FastFail { .. }));
        // cooldown elapsed: exactly one trial, concurrent admits held off
        assert_eq!(b.admit(&s, 1.0), BreakerDecision::Trial);
        assert!(matches!(b.admit(&s, 1.0), BreakerDecision::FastFail { .. }));
        // trial failure re-opens for a fresh cooldown
        assert!(b.on_failure(&s, true, 1.0));
        assert!(matches!(b.admit(&s, 1.5), BreakerDecision::FastFail { .. }));
        // next trial succeeds and fully closes
        assert_eq!(b.admit(&s, 2.1), BreakerDecision::Trial);
        b.on_success(&s);
        assert_eq!(b.admit(&s, 2.1), BreakerDecision::Execute);
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn breakers_are_independent_per_spec() {
        let mut b = BreakerSet::new(policy(1, 1.0));
        let bad = spec();
        let good = TransformSpec::type1(&[32, 32])
            .eps(1e-4)
            .precision(Precision::F32);
        assert!(b.on_failure(&bad, true, 0.0));
        assert!(matches!(
            b.admit(&bad, 0.0),
            BreakerDecision::FastFail { .. }
        ));
        assert_eq!(b.admit(&good, 0.0), BreakerDecision::Execute);
    }

    #[test]
    fn disabled_policy_is_a_no_op() {
        let mut b = BreakerSet::new(BreakerPolicy {
            enabled: false,
            ..BreakerPolicy::default()
        });
        let s = spec();
        for _ in 0..10 {
            assert!(!b.on_failure(&s, true, 0.0));
        }
        assert_eq!(b.admit(&s, 0.0), BreakerDecision::Execute);
    }
}
