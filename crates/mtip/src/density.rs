//! Synthetic molecular electron density.
//!
//! The paper's M-TIP demonstration reconstructs a particle from LCLS
//! X-ray diffraction data we do not have; per DESIGN.md §2 we substitute
//! a synthetic molecule: a sum of isotropic Gaussian blobs inside a
//! support ball. Gaussians have analytic Fourier transforms, so the
//! "measured" diffraction amplitudes on every Ewald slice are exact —
//! the reconstruction pipeline is exercised end-to-end with a known
//! ground truth.

use nufft_common::complex::Complex;
use nufft_common::shape::Shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Gaussian blob: `amp * exp(-|r - center|^2 / (2 sigma^2))`.
#[derive(Copy, Clone, Debug)]
pub struct Blob {
    pub center: [f64; 3],
    pub sigma: f64,
    pub amp: f64,
}

/// A synthetic molecule: blobs within a support ball of radius
/// `support_radius` (in the `[-pi, pi)^3 ` box coordinates).
#[derive(Clone, Debug)]
pub struct Molecule {
    pub blobs: Vec<Blob>,
    pub support_radius: f64,
}

impl Molecule {
    /// Random molecule with `n_blobs` blobs, deterministic in `seed`.
    pub fn random(n_blobs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let support_radius = 2.2;
        let blobs = (0..n_blobs)
            .map(|_| {
                // blob centers within 40% of the support radius, widths
                // chosen so (a) each blob spans >1 voxel on the grids we
                // reconstruct on (band-limited: negligible aliasing) and
                // (b) the 3-sigma extent stays inside the support ball,
                // so the phasing-step support projection is consistent
                let r = 0.4 * support_radius * rng.random_range(0.0..1.0f64).powf(1.0 / 3.0);
                let theta = rng.random_range(0.0..std::f64::consts::PI);
                let phi = rng.random_range(0.0..std::f64::consts::TAU);
                Blob {
                    center: [
                        r * theta.sin() * phi.cos(),
                        r * theta.sin() * phi.sin(),
                        r * theta.cos(),
                    ],
                    sigma: rng.random_range(0.3..0.45),
                    amp: rng.random_range(0.5..1.5),
                }
            })
            .collect();
        Molecule {
            blobs,
            support_radius,
        }
    }

    /// Real-space density at a point.
    pub fn density(&self, r: [f64; 3]) -> f64 {
        self.blobs
            .iter()
            .map(|b| {
                let d2 = (r[0] - b.center[0]).powi(2)
                    + (r[1] - b.center[1]).powi(2)
                    + (r[2] - b.center[2]).powi(2);
                b.amp * (-d2 / (2.0 * b.sigma * b.sigma)).exp()
            })
            .sum()
    }

    /// Sample the density on an `n^3` grid over `[-pi, pi)^3` (x fastest).
    pub fn sample_grid(&self, n: usize) -> Vec<f64> {
        let shape = Shape::d3(n, n, n);
        let h = std::f64::consts::TAU / n as f64;
        let mut out = vec![0.0; shape.total()];
        for (i, v) in out.iter_mut().enumerate() {
            let [i1, i2, i3] = shape.coords(i);
            let r = [
                -std::f64::consts::PI + i1 as f64 * h,
                -std::f64::consts::PI + i2 as f64 * h,
                -std::f64::consts::PI + i3 as f64 * h,
            ];
            *v = self.density(r);
        }
        out
    }

    /// Analytic Fourier transform at frequency `q` (continuous transform
    /// with the paper's convention eq. 4):
    /// `F(q) = sum_b amp (2 pi)^{3/2} sigma^3 e^{-sigma^2 |q|^2 / 2} e^{-i q . c}`.
    pub fn fourier(&self, q: [f64; 3]) -> Complex<f64> {
        let q2 = q[0] * q[0] + q[1] * q[1] + q[2] * q[2];
        let mut acc = Complex::<f64>::ZERO;
        for b in &self.blobs {
            let mag = b.amp
                * (std::f64::consts::TAU * b.sigma * b.sigma).powf(1.5)
                * (-b.sigma * b.sigma * q2 / 2.0).exp();
            let phase = -(q[0] * b.center[0] + q[1] * b.center[1] + q[2] * b.center[2]);
            acc += Complex::cis(phase).scale(mag);
        }
        acc
    }

    /// Boolean support mask on an `n^3` grid (ball of `support_radius`).
    pub fn support_mask(&self, n: usize) -> Vec<bool> {
        let shape = Shape::d3(n, n, n);
        let h = std::f64::consts::TAU / n as f64;
        (0..shape.total())
            .map(|i| {
                let [i1, i2, i3] = shape.coords(i);
                let r = [
                    -std::f64::consts::PI + i1 as f64 * h,
                    -std::f64::consts::PI + i2 as f64 * h,
                    -std::f64::consts::PI + i3 as f64 * h,
                ];
                (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt() <= self.support_radius
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_positive() {
        let a = Molecule::random(5, 42);
        let b = Molecule::random(5, 42);
        assert_eq!(a.blobs.len(), 5);
        for (x, y) in a.blobs.iter().zip(b.blobs.iter()) {
            assert_eq!(x.center, y.center);
        }
        assert!(a.density([0.0, 0.0, 0.0]) >= 0.0);
    }

    #[test]
    fn blobs_inside_support() {
        let m = Molecule::random(20, 7);
        for b in &m.blobs {
            let r = (b.center[0].powi(2) + b.center[1].powi(2) + b.center[2].powi(2)).sqrt();
            assert!(r <= m.support_radius);
        }
    }

    #[test]
    fn fourier_at_origin_is_total_mass() {
        // F(0) = integral of density = sum amp (2 pi sigma^2)^{3/2}
        let m = Molecule::random(3, 11);
        let expect: f64 = m
            .blobs
            .iter()
            .map(|b| b.amp * (std::f64::consts::TAU * b.sigma * b.sigma).powf(1.5))
            .sum();
        let f0 = m.fourier([0.0, 0.0, 0.0]);
        assert!(
            (f0.re - expect).abs() < 1e-12 * expect,
            "{} vs {expect}",
            f0.re
        );
        assert!(f0.im.abs() < 1e-14);
    }

    #[test]
    fn fourier_matches_riemann_sum() {
        // check the analytic FT against a brute-force integral of the
        // sampled density (moderate grid, moderate q)
        let m = Molecule::random(2, 3);
        let n = 48;
        let grid = m.sample_grid(n);
        let h = std::f64::consts::TAU / n as f64;
        let q = [1.0, -2.0, 0.5];
        let shape = Shape::d3(n, n, n);
        let mut acc = Complex::<f64>::ZERO;
        for (i, &rho) in grid.iter().enumerate() {
            let [i1, i2, i3] = shape.coords(i);
            let r = [
                -std::f64::consts::PI + i1 as f64 * h,
                -std::f64::consts::PI + i2 as f64 * h,
                -std::f64::consts::PI + i3 as f64 * h,
            ];
            let phase = -(q[0] * r[0] + q[1] * r[1] + q[2] * r[2]);
            acc += Complex::cis(phase).scale(rho * h * h * h);
        }
        let analytic = m.fourier(q);
        assert!(
            (acc - analytic).abs() < 1e-3 * analytic.abs().max(1e-3),
            "{acc:?} vs {analytic:?}"
        );
    }

    #[test]
    fn support_mask_shape() {
        let m = Molecule::random(3, 5);
        let mask = m.support_mask(16);
        assert_eq!(mask.len(), 16 * 16 * 16);
        // center is inside, corner is outside
        let shape = Shape::d3(16, 16, 16);
        assert!(mask[shape.idx(8, 8, 8)]);
        assert!(!mask[shape.idx(0, 0, 0)]);
    }
}
