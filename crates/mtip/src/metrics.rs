//! Resolution metrics for single-particle reconstructions.
//!
//! The standard quality measure in the SPI/cryo-EM community is the
//! Fourier shell correlation (FSC): the normalized cross-correlation of
//! two volumes' Fourier transforms, per radial frequency shell. The
//! resolution is conventionally the shell where the FSC first drops
//! below a threshold (0.5 for independent half-maps against ground
//! truth; 0.143 for half-map validation).

use nufft_common::complex::Complex;
use nufft_common::shape::Shape;
use nufft_fft::{Direction, FftNd};

/// Fourier shell correlation between two real-space volumes sampled on
/// the same `n^3` grid. Returns one value per integer shell
/// `r = 0 .. n/2`.
pub fn fourier_shell_correlation(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let shape = Shape::d3(n, n, n);
    assert_eq!(a.len(), shape.total());
    assert_eq!(b.len(), shape.total());
    let to_c =
        |v: &[f64]| -> Vec<Complex<f64>> { v.iter().map(|&x| Complex::new(x, 0.0)).collect() };
    let fft = FftNd::<f64>::new(shape);
    let mut fa = to_c(a);
    let mut fb = to_c(b);
    fft.process(&mut fa, Direction::Forward);
    fft.process(&mut fb, Direction::Forward);
    let nshell = n / 2 + 1;
    let mut cross = vec![Complex::<f64>::ZERO; nshell];
    let mut pa = vec![0.0f64; nshell];
    let mut pb = vec![0.0f64; nshell];
    // enumerate frequencies in the same storage order as the FFT output:
    // bin index i corresponds to signed frequency via freqs ordering of
    // the DFT (bin k holds frequency k or k - n for k >= n/2)
    let signed = |bin: usize| -> i64 {
        if bin < n.div_ceil(2) {
            bin as i64
        } else {
            bin as i64 - n as i64
        }
    };
    let mut idx = 0usize;
    for k3 in 0..n {
        let f3 = signed(k3) as f64;
        for k2 in 0..n {
            let f2 = signed(k2) as f64;
            for k1 in 0..n {
                let f1 = signed(k1) as f64;
                let r = (f1 * f1 + f2 * f2 + f3 * f3).sqrt().round() as usize;
                if r < nshell {
                    cross[r] += fa[idx] * fb[idx].conj();
                    pa[r] += fa[idx].norm_sqr();
                    pb[r] += fb[idx].norm_sqr();
                }
                idx += 1;
            }
        }
    }
    (0..nshell)
        .map(|r| {
            let d = (pa[r] * pb[r]).sqrt();
            if d > 0.0 {
                cross[r].re / d
            } else {
                0.0
            }
        })
        .collect()
}

/// First shell at which the FSC drops below `threshold`; `None` if it
/// never does (resolution limited by the grid, not the data).
pub fn fsc_resolution(fsc: &[f64], threshold: f64) -> Option<usize> {
    fsc.iter().position(|&v| v < threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::Molecule;

    #[test]
    fn identical_volumes_have_unit_fsc() {
        let mol = Molecule::random(3, 5);
        let v = mol.sample_grid(16);
        let fsc = fourier_shell_correlation(&v, &v, 16);
        for (r, &c) in fsc.iter().enumerate() {
            // shells with any signal must correlate to 1
            if c != 0.0 {
                assert!((c - 1.0).abs() < 1e-10, "shell {r}: {c}");
            }
        }
        assert!(fsc_resolution(&fsc, 0.5).is_none() || fsc[0] >= 0.5);
    }

    #[test]
    fn independent_molecules_decorrelate_at_high_shells() {
        let a = Molecule::random(4, 1).sample_grid(20);
        let b = Molecule::random(4, 2).sample_grid(20);
        let fsc = fourier_shell_correlation(&a, &b, 20);
        // DC shell correlates (both positive masses) ...
        assert!(fsc[0] > 0.9);
        // ... but the high shells must lose correlation
        let tail: f64 = fsc[5..].iter().map(|v| v.abs()).sum::<f64>() / (fsc.len() - 5) as f64;
        assert!(tail < 0.8, "tail correlation too high: {tail}");
    }

    #[test]
    fn noisy_copy_loses_resolution_monotonically_in_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let truth = Molecule::random(3, 9).sample_grid(16);
        let mut rng = StdRng::seed_from_u64(10);
        let noisy = |amp: f64, rng: &mut StdRng| -> Vec<f64> {
            truth
                .iter()
                .map(|&t| t + amp * rng.random_range(-1.0..1.0))
                .collect()
        };
        let low = noisy(0.01, &mut rng);
        let high = noisy(0.5, &mut rng);
        let f_low = fourier_shell_correlation(&truth, &low, 16);
        let f_high = fourier_shell_correlation(&truth, &high, 16);
        let mean = |f: &[f64]| f.iter().sum::<f64>() / f.len() as f64;
        assert!(mean(&f_low) > mean(&f_high));
    }

    #[test]
    fn resolution_threshold_detection() {
        let fsc = [1.0, 0.95, 0.8, 0.45, 0.2, 0.05];
        assert_eq!(fsc_resolution(&fsc, 0.5), Some(3));
        assert_eq!(fsc_resolution(&fsc, 0.01), None);
    }
}
