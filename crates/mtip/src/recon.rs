//! The M-TIP (multi-tiered iterative phasing) reconstruction loop —
//! paper Sec. V.
//!
//! Working units: the uniform grid holds the electron density on voxel
//! indices `k in I_N^3`; Ewald-slice samples live at continuous
//! frequencies `q in [-pi, pi)^3` (radians per voxel). With these units:
//!
//! * **slicing** (step i) is a 3D **type 2** NUFFT:
//!   `F(q_j) = sum_k rho_k e^{-i k . q_j}`;
//! * **merging** (step iii) solves the least-squares problem
//!   `min || A rho - v ||` (A = slicing) by warm-started conjugate
//!   gradients on the normal equations, each CG step being one
//!   type-2/type-1 NUFFT pair with the *same* plan — the plan-reuse
//!   pattern the paper's "exec" timing is designed for. (The production
//!   M-TIP uses a specialized direct merge with two type-1 NUFFTs; the
//!   Table II harness reproduces that operation count.)
//! * **orientation matching** (step ii) scores candidate rotations per
//!   image by correlating sliced magnitudes with the measured ones;
//! * **phasing** (step iv) is support + positivity projection in real
//!   space.
//!
//! Simplifications vs the LCLS production code are documented in
//! DESIGN.md §2: data are synthesized from an analytic molecule (exact
//! magnitudes, no photon noise) and orientation matching is over a
//! discrete candidate set.

use crate::density::Molecule;
use crate::geometry::{Rotation, SliceGeometry};
use cufinufft::{Plan, RecoveryPolicy};
use gpu_sim::Device;
use nufft_common::complex::Complex;
use nufft_common::error::Result;
use nufft_common::shape::Shape;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a reconstruction run.
#[derive(Clone, Debug)]
pub struct MtipConfig {
    /// Uniform grid size per dimension (paper Table II: 41 / 81).
    pub n_grid: usize,
    /// Number of diffraction images.
    pub n_images: usize,
    /// Detector resolution per side (points per slice = n_det^2).
    pub n_det: usize,
    /// NUFFT tolerance (the production M-TIP uses 1e-12).
    pub eps: f64,
    /// M-TIP iterations.
    pub iterations: usize,
    /// Gaussian blobs in the synthetic molecule.
    pub n_blobs: usize,
    /// Enable discrete orientation matching (step ii).
    pub match_orientations: bool,
    /// Decoy orientations per image when matching.
    pub n_decoys: usize,
    /// Conjugate-gradient iterations in the merging solve.
    pub cg_iters: usize,
    /// Validation mode: use the true complex phases instead of the
    /// model's (isolates slicing/merging correctness from the phase
    /// retrieval problem).
    pub oracle_phases: bool,
    /// HIO feedback parameter for the phasing projection (0 = plain
    /// error reduction; ~0.9 is the standard choice for magnitude-only
    /// retrieval).
    pub hio_beta: f64,
    /// Use a tight support (1-voxel dilation of the true density's
    /// footprint) instead of the loose support ball. Loose symmetric
    /// supports are a classic stagnation mode for magnitude-only
    /// retrieval; the production M-TIP tightens the support via
    /// shrink-wrap, which this stands in for.
    pub tight_support: bool,
    /// Shrink-wrap support refinement: every `0`-disabled / `k`-th
    /// iteration, re-derive the support as the region where the smoothed
    /// current estimate exceeds `shrink_wrap_threshold` of its maximum —
    /// the standard CDI technique the production M-TIP uses instead of a
    /// fixed mask.
    pub shrink_wrap_every: usize,
    /// Threshold fraction for shrink-wrap (typical: 0.05-0.2).
    pub shrink_wrap_threshold: f64,
    /// Validation mode: initialize from the true density. With
    /// magnitude-only data the loop must then hold the truth as a fixed
    /// point; global convergence from random starts additionally needs
    /// the restart/shrink-wrap machinery of the production code and is
    /// out of scope here (see DESIGN.md §2).
    pub init_truth: bool,
    /// Fault-recovery policy for every NUFFT plan in the loop: bounded
    /// retry of transient device faults, OOM-driven chunk shrinking in
    /// the batched merge, and (opt-in) SM-to-GM-sort fallback. A
    /// mid-iteration fault that recovery cannot absorb surfaces as a
    /// typed error from [`reconstruct`] instead of a panic.
    pub recovery: RecoveryPolicy,
    pub seed: u64,
}

impl Default for MtipConfig {
    fn default() -> Self {
        MtipConfig {
            n_grid: 24,
            n_images: 12,
            n_det: 16,
            eps: 1e-9,
            iterations: 8,
            n_blobs: 4,
            match_orientations: false,
            n_decoys: 3,
            cg_iters: 6,
            oracle_phases: false,
            hio_beta: 0.9,
            tight_support: false,
            shrink_wrap_every: 0,
            shrink_wrap_threshold: 0.1,
            init_truth: false,
            recovery: RecoveryPolicy::default(),
            seed: 1,
        }
    }
}

/// Per-stage simulated-GPU seconds accumulated over all iterations.
#[derive(Copy, Clone, Debug, Default)]
pub struct MtipTimings {
    pub setpts: f64,
    pub slicing: f64,
    pub matching: f64,
    pub merging: f64,
    pub phasing_host: f64,
}

/// Outcome of a reconstruction.
#[derive(Clone, Debug)]
pub struct MtipResult {
    /// Relative l2 density error vs ground truth, per iteration.
    pub errors: Vec<f64>,
    /// Fraction of images assigned their true orientation, per iteration
    /// (all 1.0 when matching is disabled).
    pub orientation_accuracy: Vec<f64>,
    pub timings: MtipTimings,
    /// Total nonuniform points per full slicing pass.
    pub m_points: usize,
    /// Final reconstructed density (real part, grid order).
    pub density: Vec<f64>,
    /// Ground-truth density on the same grid (for FSC etc.).
    pub truth: Vec<f64>,
}

/// Scale factor between the analytic molecule FT (defined over
/// `[-pi,pi)^3` physical coordinates) and the voxel-lattice sum the NUFFT
/// computes; see module docs.
fn lattice_scale(n: usize) -> f64 {
    (n as f64 / std::f64::consts::TAU).powi(3)
}

fn points_from(qs: &[[f64; 3]]) -> Points<f64> {
    let m = qs.len();
    let mut coords = [
        Vec::with_capacity(m),
        Vec::with_capacity(m),
        Vec::with_capacity(m),
    ];
    for q in qs {
        coords[0].push(q[0]);
        coords[1].push(q[1]);
        coords[2].push(q[2]);
    }
    Points { coords, dim: 3 }
}

/// Exact complex slice values from the analytic molecule.
fn measure_complex(mol: &Molecule, qs: &[[f64; 3]], n: usize) -> Vec<Complex<f64>> {
    let s = lattice_scale(n);
    let phys = n as f64 / std::f64::consts::TAU;
    qs.iter()
        .map(|q| {
            let qp = [q[0] * phys, q[1] * phys, q[2] * phys];
            mol.fourier(qp).scale(s)
        })
        .collect()
}

/// Measured slice magnitudes (what a detector records).
fn measure(mol: &Molecule, qs: &[[f64; 3]], n: usize) -> Vec<f64> {
    measure_complex(mol, qs, n)
        .iter()
        .map(|z| z.abs())
        .collect()
}

/// Pearson-like correlation of two magnitude vectors.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da <= 0.0 || db <= 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Periodic Gaussian blur of a real volume (sigma in voxels), via FFT.
fn gaussian_blur(v: &[f64], n: usize, sigma: f64) -> Vec<f64> {
    use nufft_fft::{Direction, FftNd};
    let shape = Shape::d3(n, n, n);
    let mut f: Vec<Complex<f64>> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let fft = FftNd::<f64>::new(shape);
    fft.process(&mut f, Direction::Forward);
    let signed = |bin: usize| -> f64 {
        if bin < n.div_ceil(2) {
            bin as f64
        } else {
            bin as f64 - n as f64
        }
    };
    let c = 2.0 * (std::f64::consts::PI * sigma / n as f64).powi(2);
    let mut idx = 0usize;
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                let q2 = signed(k1).powi(2) + signed(k2).powi(2) + signed(k3).powi(2);
                f[idx] = f[idx].scale((-c * q2).exp());
                idx += 1;
            }
        }
    }
    fft.process(&mut f, Direction::Backward);
    let s = 1.0 / shape.total() as f64;
    f.iter().map(|z| z.re * s).collect()
}

/// Run a full M-TIP reconstruction on the given simulated device.
///
/// When a trace session is attached to `dev` (see `Device::attach_trace`),
/// the loop records per-iteration spans around the four M-TIP steps so a
/// Chrome trace shows slicing/matching/merging/phasing nested under each
/// iteration.
pub fn reconstruct(cfg: &MtipConfig, dev: &Device) -> Result<MtipResult> {
    let trace = dev.trace();
    let _on = trace.as_ref().map(|t| t.activate());
    let n = cfg.n_grid;
    let shape = Shape::d3(n, n, n);
    let mol = Molecule::random(cfg.n_blobs, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
    let geom = SliceGeometry {
        n_det: cfg.n_det,
        q_max: 2.0,
        k0: 10.0,
    };
    // ground truth (for error reporting; the tight support derived from
    // it stands in for shrink-wrap, see `MtipConfig::tight_support`)
    let truth = mol.sample_grid(n);
    let mut support = if cfg.tight_support {
        let tmax = truth.iter().cloned().fold(0.0f64, f64::max);
        let base: Vec<bool> = truth.iter().map(|&t| t > 5e-3 * tmax).collect();
        // dilate by one voxel in each axis direction
        let mut dil = base.clone();
        for (i, d) in dil.iter_mut().enumerate() {
            if *d {
                continue;
            }
            let [a, b, c] = shape.coords(i);
            'nb: for da in -1i64..=1 {
                for db in -1i64..=1 {
                    for dc in -1i64..=1 {
                        let ii = shape.idx(
                            (a as i64 + da).rem_euclid(n as i64) as usize,
                            (b as i64 + db).rem_euclid(n as i64) as usize,
                            (c as i64 + dc).rem_euclid(n as i64) as usize,
                        );
                        if base[ii] {
                            *d = true;
                            break 'nb;
                        }
                    }
                }
            }
        }
        dil
    } else {
        mol.support_mask(n)
    };

    // true orientations + measured data
    let true_rots: Vec<Rotation> = (0..cfg.n_images)
        .map(|_| Rotation::random(&mut rng))
        .collect();
    let measured: Vec<Vec<f64>> = true_rots
        .iter()
        .map(|r| measure(&mol, &geom.slice_points(r), n))
        .collect();
    // candidate sets: true orientation + decoys, shuffled position
    let candidates: Vec<Vec<Rotation>> = true_rots
        .iter()
        .map(|r| {
            let mut c = vec![*r];
            for _ in 0..cfg.n_decoys {
                c.push(Rotation::random(&mut rng));
            }
            c
        })
        .collect();

    // initial orientation estimates: random candidate (or truth when
    // matching is off)
    let mut est: Vec<usize> = if cfg.match_orientations {
        (0..cfg.n_images)
            .map(|i| rng.random_range(0..candidates[i].len()))
            .collect()
    } else {
        vec![0; cfg.n_images]
    };

    // initial density estimate: random positive noise inside the support
    // (a diverse start helps magnitude-only retrieval escape the uniform
    // fixed point)
    let mut rho: Vec<Complex<f64>> = if cfg.init_truth {
        truth.iter().map(|&t| Complex::new(t, 0.0)).collect()
    } else {
        support
            .iter()
            .map(|&s| {
                if s {
                    Complex::new(rng.random_range(0.1..1.0), 0.0)
                } else {
                    Complex::ZERO
                }
            })
            .collect()
    };

    let m_per = geom.points_per_slice();
    let m_total = m_per * cfg.n_images;
    let mut timings = MtipTimings::default();
    let mut errors = Vec::new();
    let mut orient_acc = Vec::new();

    let mut t2 = Plan::<f64>::builder(TransformType::Type2, &[n, n, n])
        .iflag(-1)
        .eps(cfg.eps)
        .recovery(cfg.recovery)
        .build(dev)?;
    // the merge plan declares ntransf = 2: each outer iteration stacks
    // the data-projection adjoint and the CG seed into one batched call
    let mut t1 = Plan::<f64>::builder(TransformType::Type1, &[n, n, n])
        .iflag(1)
        .eps(cfg.eps)
        .ntransf(2)
        .recovery(cfg.recovery)
        .build(dev)?;
    // one reusable plan for candidate scoring (points change per
    // candidate, so only the allocations and FFT plan are shared)
    let mut plan_small = if cfg.match_orientations {
        Some(
            Plan::<f64>::builder(TransformType::Type2, &[n, n, n])
                .iflag(-1)
                .eps(cfg.eps)
                .recovery(cfg.recovery)
                .build(dev)?,
        )
    } else {
        None
    };

    for _iter in 0..cfg.iterations {
        let _iter_span = nufft_trace::span!("mtip.iteration", iter = _iter);
        // assemble current point set
        let qs: Vec<[f64; 3]> = est
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| geom.slice_points(&candidates[i][c]))
            .collect();
        let pts = points_from(&qs);
        let t0 = dev.clock();
        t2.set_pts(&pts)?;
        t1.set_pts(&pts)?;
        timings.setpts += dev.clock() - t0;

        // step i: slicing
        let t0 = dev.clock();
        let slice_span = nufft_trace::span!("mtip.slicing", m = m_total);
        let mut sliced = vec![Complex::<f64>::ZERO; m_total];
        t2.execute(&rho, &mut sliced)?;
        drop(slice_span);
        timings.slicing += dev.clock() - t0;

        // step ii: orientation matching over the candidate sets
        if cfg.match_orientations {
            let t0 = dev.clock();
            let _match_span = nufft_trace::span!(
                "mtip.matching",
                images = cfg.n_images,
                decoys = cfg.n_decoys
            );
            for (i, cands) in candidates.iter().enumerate() {
                let mut best = (f64::NEG_INFINITY, est[i]);
                for (ci, cand) in cands.iter().enumerate() {
                    let cand_qs = geom.slice_points(cand);
                    let cand_pts = points_from(&cand_qs);
                    let plan_small = plan_small.as_mut().expect("candidate plan");
                    plan_small.set_pts(&cand_pts)?;
                    let mut vals = vec![Complex::<f64>::ZERO; m_per];
                    plan_small.execute(&rho, &mut vals)?;
                    let mags: Vec<f64> = vals.iter().map(|z| z.abs()).collect();
                    let score = correlation(&mags, &measured[i]);
                    if score > best.0 {
                        best = (score, ci);
                    }
                }
                est[i] = best.1;
            }
            timings.matching += dev.clock() - t0;
            // re-register points if assignments changed the geometry
            let qs: Vec<[f64; 3]> = est
                .iter()
                .enumerate()
                .flat_map(|(i, &c)| geom.slice_points(&candidates[i][c]))
                .collect();
            let pts = points_from(&qs);
            let t0 = dev.clock();
            t2.set_pts(&pts)?;
            t1.set_pts(&pts)?;
            timings.setpts += dev.clock() - t0;
            let t0 = dev.clock();
            t2.execute(&rho, &mut sliced)?;
            timings.slicing += dev.clock() - t0;
        }

        // data projection: keep model phases, impose measured magnitudes
        // (oracle mode substitutes the true complex values)
        let mut v = vec![Complex::<f64>::ZERO; m_total];
        if cfg.oracle_phases {
            for (i, &c) in est.iter().enumerate() {
                let vals = measure_complex(&mol, &geom.slice_points(&candidates[i][c]), n);
                v[i * m_per..(i + 1) * m_per].copy_from_slice(&vals);
            }
        } else {
            for (i, out) in v.iter_mut().enumerate() {
                let img = i / m_per;
                let mag = measured[img][i % m_per];
                let s = sliced[i];
                *out = if s.abs() > 1e-300 {
                    s.scale(mag / s.abs())
                } else {
                    Complex::new(mag, 0.0)
                };
            }
        }

        // step iii: merging — warm-started CG on A^H A x = A^H v
        let t0 = dev.clock();
        let merge_span = nufft_trace::span!("mtip.merging", cg_iters = cfg.cg_iters);
        let nvox = shape.total();
        let lambda = 1e-3 * m_total as f64 / nvox as f64; // Tikhonov for unsampled modes
        let mut x = rho.clone();
        let mut slice_buf = vec![Complex::<f64>::ZERO; m_total];
        t2.execute(&x, &mut slice_buf)?;
        // the data-projection adjoint A^H v and the CG seed A^H A x are
        // independent type-1 transforms over the same points: stack them
        // into one pipelined batched call
        let mut stacked = Vec::with_capacity(2 * m_total);
        stacked.extend_from_slice(&v);
        stacked.extend_from_slice(&slice_buf);
        let mut merged = vec![Complex::<f64>::ZERO; 2 * nvox];
        t1.execute_many(&stacked, &mut merged)?;
        let rhs = merged[..nvox].to_vec();
        let mut ap = merged[nvox..].to_vec();
        // r = rhs - (A^H A + lambda) x
        let mut r: Vec<Complex<f64>> = rhs
            .iter()
            .zip(ap.iter().zip(x.iter()))
            .map(|(b, (nx, xi))| *b - *nx - xi.scale(lambda))
            .collect();
        let mut p = r.clone();
        let mut rs: f64 = r.iter().map(|z| z.norm_sqr()).sum();
        for _ in 0..cfg.cg_iters {
            if rs <= 1e-300 {
                break;
            }
            t2.execute(&p, &mut slice_buf)?;
            t1.execute(&slice_buf, &mut ap)?;
            for (a, b) in ap.iter_mut().zip(p.iter()) {
                *a += b.scale(lambda);
            }
            let pap: f64 = p
                .iter()
                .zip(ap.iter())
                .map(|(a, b)| (*a * b.conj()).re)
                .sum();
            if pap <= 0.0 {
                break;
            }
            let alpha = rs / pap;
            for i in 0..nvox {
                x[i] += p[i].scale(alpha);
                r[i] -= ap[i].scale(alpha);
            }
            let rs_new: f64 = r.iter().map(|z| z.norm_sqr()).sum();
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..nvox {
                p[i] = r[i] + p[i].scale(beta);
            }
        }
        drop(merge_span);
        timings.merging += dev.clock() - t0;

        let phase_span = nufft_trace::span!("mtip.phasing", beta = cfg.hio_beta);
        // step iv: phasing — hybrid input-output: voxels satisfying the
        // constraints take the merged value; violating voxels get the
        // feedback update rho - beta x (beta = 0 reduces to plain error
        // reduction / support projection)
        let th = std::time::Instant::now();
        let beta = cfg.hio_beta;
        // the constraint-satisfying estimate (support + positivity
        // projection of the merged solution) — this is what we report
        let estimate: Vec<f64> = support
            .iter()
            .zip(x.iter())
            .map(|(&s, z)| if s { z.re.max(0.0) } else { 0.0 })
            .collect();
        for ((dst, (&s, z)), &e) in rho
            .iter_mut()
            .zip(support.iter().zip(x.iter()))
            .zip(estimate.iter())
        {
            let ok = s && z.re > 0.0;
            let val = if ok { e } else { dst.re - beta * z.re };
            *dst = Complex::new(val, 0.0);
        }
        timings.phasing_host += th.elapsed().as_secs_f64();
        drop(phase_span);

        // shrink-wrap: refine the support from the smoothed estimate
        if cfg.shrink_wrap_every > 0 && (_iter + 1) % cfg.shrink_wrap_every == 0 {
            let smoothed = gaussian_blur(&estimate, n, 1.0);
            let smax = smoothed.iter().cloned().fold(0.0f64, f64::max);
            if smax > 0.0 {
                for (s_flag, &v) in support.iter_mut().zip(smoothed.iter()) {
                    *s_flag = v > cfg.shrink_wrap_threshold * smax;
                }
            }
        }

        // error vs ground truth with optimal scalar fit; magnitude-only
        // retrieval can converge to the centrosymmetric twin rho(-r),
        // which is equally consistent with the data, so report the
        // better of the two
        let fit_err = |flip: bool| -> f64 {
            let get = |i: usize| -> f64 {
                if flip {
                    let [a, b, c] = shape.coords(i);
                    estimate[shape.idx((n - a) % n, (n - b) % n, (n - c) % n)]
                } else {
                    estimate[i]
                }
            };
            let mut dot = 0.0;
            let mut nrm = 0.0;
            for (i, &t) in truth.iter().enumerate() {
                dot += get(i) * t;
                nrm += get(i) * get(i);
            }
            let alpha = if nrm > 0.0 { dot / nrm } else { 0.0 };
            let mut err2 = 0.0;
            let mut ref2 = 0.0;
            for (i, &t) in truth.iter().enumerate() {
                err2 += (alpha * get(i) - t).powi(2);
                ref2 += t * t;
            }
            (err2 / ref2).sqrt()
        };
        errors.push(fit_err(false).min(fit_err(true)));
        let acc = est
            .iter()
            .filter(|&&c| c == 0) // candidate 0 is the true orientation
            .count() as f64
            / cfg.n_images as f64;
        orient_acc.push(acc);
    }

    Ok(MtipResult {
        errors,
        orientation_accuracy: orient_acc,
        timings,
        m_points: m_total,
        density: rho.iter().map(|z| z.re).collect(),
        truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(correlation(&a, &flat), 0.0);
    }

    #[test]
    fn reconstruction_error_decreases() {
        let cfg = MtipConfig {
            n_grid: 20,
            n_images: 10,
            n_det: 12,
            eps: 1e-6,
            iterations: 6,
            n_blobs: 3,
            match_orientations: false,
            n_decoys: 0,
            cg_iters: 6,
            oracle_phases: true,
            hio_beta: 0.0,
            tight_support: false,
            shrink_wrap_every: 0,
            shrink_wrap_threshold: 0.1,
            init_truth: false,
            recovery: RecoveryPolicy::default(),
            seed: 7,
        };
        let dev = Device::v100();
        let res = reconstruct(&cfg, &dev).unwrap();
        assert_eq!(res.errors.len(), 6);
        let first = res.errors[0];
        let last = *res.errors.last().unwrap();
        assert!(
            last < 0.8 * first,
            "error should decrease: {:?}",
            res.errors
        );
        assert!(last < 0.5, "final error too high: {last}");
        // stage timings populated
        assert!(res.timings.slicing > 0.0);
        assert!(res.timings.merging > 0.0);
        assert!(res.timings.setpts > 0.0);
    }

    #[test]
    fn magnitude_only_truth_is_fixed_point() {
        // with magnitude-only data the full HIO loop must hold the true
        // density as a (numerically) stable fixed point
        let cfg = MtipConfig {
            n_grid: 18,
            n_images: 10,
            n_det: 12,
            eps: 1e-6,
            iterations: 6,
            n_blobs: 3,
            match_orientations: false,
            n_decoys: 0,
            cg_iters: 5,
            oracle_phases: false,
            hio_beta: 0.9,
            tight_support: true,
            shrink_wrap_every: 0,
            shrink_wrap_threshold: 0.1,
            init_truth: true,
            recovery: RecoveryPolicy::default(),
            seed: 17,
        };
        let dev = Device::v100();
        let res = reconstruct(&cfg, &dev).unwrap();
        assert!(
            *res.errors.last().unwrap() < 0.01,
            "truth should be a fixed point: {:?}",
            res.errors
        );
    }

    #[test]
    fn shrink_wrap_keeps_truth_fixed_point() {
        // shrink-wrap from the loose ball support must not destabilize a
        // converged solution: run magnitude-only from truth with
        // shrink-wrap active and verify the error stays small
        let cfg = MtipConfig {
            n_grid: 18,
            n_images: 10,
            n_det: 12,
            eps: 1e-6,
            iterations: 6,
            n_blobs: 3,
            match_orientations: false,
            n_decoys: 0,
            cg_iters: 5,
            oracle_phases: false,
            hio_beta: 0.9,
            tight_support: false,
            shrink_wrap_every: 2,
            shrink_wrap_threshold: 0.05,
            init_truth: true,
            recovery: RecoveryPolicy::default(),
            seed: 19,
        };
        let dev = Device::v100();
        let res = reconstruct(&cfg, &dev).unwrap();
        assert!(
            *res.errors.last().unwrap() < 0.05,
            "shrink-wrap should hold the fixed point: {:?}",
            res.errors
        );
    }

    #[test]
    fn orientation_matching_recovers_assignments() {
        let cfg = MtipConfig {
            n_grid: 20,
            n_images: 6,
            n_det: 16,
            eps: 1e-6,
            iterations: 5,
            n_blobs: 6,
            match_orientations: true,
            n_decoys: 2,
            cg_iters: 6,
            oracle_phases: true,
            hio_beta: 0.0,
            tight_support: false,
            shrink_wrap_every: 0,
            shrink_wrap_threshold: 0.1,
            init_truth: false,
            recovery: RecoveryPolicy::default(),
            seed: 13,
        };
        let dev = Device::v100();
        let res = reconstruct(&cfg, &dev).unwrap();
        let final_acc = *res.orientation_accuracy.last().unwrap();
        assert!(
            final_acc >= 0.8,
            "matching should find most true orientations: {:?}",
            res.orientation_accuracy
        );
        assert!(res.timings.matching > 0.0);
    }
}
