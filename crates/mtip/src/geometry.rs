//! Orientations and Ewald-sphere slice geometry (paper Sec. V, Fig. 8).
//!
//! Each diffraction image measures the 3D Fourier transform on an Ewald
//! sphere slice passing through the origin, at an unknown orientation.
//! A detector pixel at transverse frequency `(qx, qy)` samples the 3D
//! frequency `(qx, qy, qz)` with `qz = (qx^2 + qy^2) / (2 k0)` (sphere of
//! radius `k0` through the origin), rotated by the shot's orientation.

use rand::rngs::StdRng;
use rand::Rng;

/// A 3D rotation stored as a row-major 3x3 matrix.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Rotation(pub [[f64; 3]; 3]);

impl Rotation {
    pub fn identity() -> Self {
        Rotation([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Build from a unit quaternion `(w, x, y, z)`.
    pub fn from_quaternion(w: f64, x: f64, y: f64, z: f64) -> Self {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        let (w, x, y, z) = (w / n, x / n, y / n, z / n);
        Rotation([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Uniformly random rotation (Shoemake's uniform quaternion method).
    pub fn random(rng: &mut StdRng) -> Self {
        let u1: f64 = rng.random_range(0.0..1.0);
        let u2: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let u3: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let a = (1.0 - u1).sqrt();
        let b = u1.sqrt();
        Self::from_quaternion(a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos())
    }

    /// Rotation about one axis by `angle` (testing/perturbation helper).
    pub fn about_axis(axis: usize, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        match axis {
            0 => Rotation([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]]),
            1 => Rotation([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]]),
            _ => Rotation([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]]),
        }
    }

    #[inline]
    pub fn apply(&self, v: [f64; 3]) -> [f64; 3] {
        let m = &self.0;
        [
            m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
        ]
    }

    /// Compose `self * other`.
    pub fn compose(&self, other: &Rotation) -> Rotation {
        let (a, b) = (&self.0, &other.0);
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| a[i][k] * b[k][j]).sum();
            }
        }
        Rotation(out)
    }

    /// Determinant (should be +1 for a proper rotation).
    pub fn det(&self) -> f64 {
        let m = &self.0;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }
}

/// Ewald-slice sampling parameters.
#[derive(Copy, Clone, Debug)]
pub struct SliceGeometry {
    /// Detector is `n_det x n_det` pixels.
    pub n_det: usize,
    /// Maximum transverse frequency sampled (the NUFFT box is
    /// `[-pi, pi)^3`; keep `q_max` comfortably inside, since the Ewald
    /// curvature pushes `qz` outward).
    pub q_max: f64,
    /// Beam wavenumber `k0` controlling the sphere curvature; large `k0`
    /// = nearly flat slices.
    pub k0: f64,
}

impl SliceGeometry {
    pub fn points_per_slice(&self) -> usize {
        self.n_det * self.n_det
    }

    /// 3D frequencies sampled by one shot at orientation `rot`.
    pub fn slice_points(&self, rot: &Rotation) -> Vec<[f64; 3]> {
        let n = self.n_det;
        let mut out = Vec::with_capacity(n * n);
        for iy in 0..n {
            for ix in 0..n {
                let qx = self.q_max * (2.0 * ix as f64 / (n - 1).max(1) as f64 - 1.0);
                let qy = self.q_max * (2.0 * iy as f64 / (n - 1).max(1) as f64 - 1.0);
                let qz = (qx * qx + qy * qy) / (2.0 * self.k0);
                out.push(rot.apply([qx, qy, qz]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rotations_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let r = Rotation::random(&mut rng);
            // det = +1
            assert!((r.det() - 1.0).abs() < 1e-12);
            // columns are orthonormal
            for i in 0..3 {
                for j in 0..3 {
                    let dot: f64 = (0..3).map(|k| r.0[k][i] * r.0[k][j]).sum();
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!((dot - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = Rotation::random(&mut rng);
        let v = [0.3, -1.2, 2.0];
        let w = r.apply(v);
        let n0: f64 = v.iter().map(|x| x * x).sum();
        let n1: f64 = w.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() < 1e-12);
    }

    #[test]
    fn compose_matches_sequential_apply() {
        let a = Rotation::about_axis(0, 0.4);
        let b = Rotation::about_axis(2, -1.1);
        let v = [1.0, 2.0, 3.0];
        let via_compose = a.compose(&b).apply(v);
        let via_seq = a.apply(b.apply(v));
        for i in 0..3 {
            assert!((via_compose[i] - via_seq[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_passes_through_origin_and_curves() {
        let geom = SliceGeometry {
            n_det: 33,
            q_max: 2.0,
            k0: 10.0,
        };
        let pts = geom.slice_points(&Rotation::identity());
        assert_eq!(pts.len(), 33 * 33);
        // the central pixel samples q = 0
        let center = pts[(33 / 2) * 33 + 33 / 2];
        assert!(center.iter().all(|c| c.abs() < 1e-12));
        // corner pixels have positive qz (Ewald curvature)
        assert!(pts[0][2] > 0.0);
        // all points stay inside the periodic box
        for p in &pts {
            for c in p {
                assert!(c.abs() < std::f64::consts::PI, "{p:?}");
            }
        }
    }

    #[test]
    fn rotated_slice_is_rotation_of_flat_slice() {
        let geom = SliceGeometry {
            n_det: 9,
            q_max: 1.5,
            k0: 8.0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let rot = Rotation::random(&mut rng);
        let flat = geom.slice_points(&Rotation::identity());
        let turned = geom.slice_points(&rot);
        for (f, t) in flat.iter().zip(turned.iter()) {
            let want = rot.apply(*f);
            for i in 0..3 {
                assert!((want[i] - t[i]).abs() < 1e-12);
            }
        }
    }
}
