//! M-TIP: 3D single-particle X-ray reconstruction (paper Sec. V),
//! driven by cuFINUFFT transforms on simulated GPUs.
//!
//! * [`density`] — synthetic molecule with analytic Fourier transform
//!   (the substitution for LCLS diffraction data, DESIGN.md §2);
//! * [`geometry`] — orientations and Ewald-sphere slice sampling;
//! * [`recon`] — the four-step M-TIP iteration (slicing, orientation
//!   matching, merging, phasing);
//! * [`cluster`] — multi-rank work management and the weak-scaling
//!   harness behind the paper's Table II and Fig. 9.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod density;
pub mod geometry;
pub mod metrics;
pub mod recon;

pub use cluster::{weak_scaling, Node, RankTask, RankTiming, ScalingPoint};
pub use cufinufft::RecoveryPolicy;
pub use density::Molecule;
pub use geometry::{Rotation, SliceGeometry};
pub use metrics::{fourier_shell_correlation, fsc_resolution};
pub use recon::{reconstruct, MtipConfig, MtipResult, MtipTimings};
