//! Multi-rank, multi-GPU work management (paper Sec. V-A/B).
//!
//! The production code uses MPI (`mpi4py`) with one process per rank and
//! round-robin GPU assignment; scatter before slicing, reduce after
//! merging. Here each rank is an OS thread with its own simulated
//! [`Device`]; the whole-node wall clock follows from the single-queue
//! contention model: ranks sharing a GPU serialize on it, so the wall
//! time of a stage is `max over GPUs of (sum of that GPU's ranks'
//! times)`. With at most one rank per GPU this reduces to the max over
//! ranks — ideal weak scaling — and beyond one rank per GPU it grows
//! linearly, reproducing the deterioration in the paper's Fig. 9.

use crate::geometry::{Rotation, SliceGeometry};
use cufinufft::Plan;
use gpu_sim::Device;
use nufft_common::complex::Complex;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A compute-node description.
#[derive(Copy, Clone, Debug)]
pub struct Node {
    pub name: &'static str,
    pub gpus: usize,
}

impl Node {
    /// NERSC Cori GPU: 8 V100 per node.
    pub fn cori_gpu() -> Self {
        Node {
            name: "Cori GPU",
            gpus: 8,
        }
    }

    /// OLCF Summit: 6 V100 per node.
    pub fn summit() -> Self {
        Node {
            name: "Summit",
            gpus: 6,
        }
    }
}

/// The NUFFT workload one rank executes per M-TIP iteration (paper
/// Table II rows).
#[derive(Copy, Clone, Debug)]
pub struct RankTask {
    /// Uniform grid size per dim.
    pub n_grid: usize,
    /// Nonuniform points per rank.
    pub m: usize,
    /// Transform type (slicing = type 2, merging = type 1).
    pub ttype: TransformType,
    /// How many transforms per iteration (merging does two).
    pub transforms: usize,
    /// NUFFT tolerance.
    pub eps: f64,
}

impl RankTask {
    /// Table II "Slicing" row (optionally scaled down by `scale` to keep
    /// the functional simulation tractable; timings are per-point linear
    /// so ratios are preserved).
    pub fn slicing(scale: usize) -> Self {
        RankTask {
            n_grid: 41,
            m: 1_020_000 / scale.max(1),
            ttype: TransformType::Type2,
            transforms: 1,
            eps: 1e-12,
        }
    }

    /// Table II "Merging" row.
    pub fn merging(scale: usize) -> Self {
        RankTask {
            n_grid: 81,
            m: 16_400_000 / scale.max(1),
            ttype: TransformType::Type1,
            transforms: 2,
            eps: 1e-12,
        }
    }
}

/// Timing of one rank's stage work, in simulated seconds.
#[derive(Copy, Clone, Debug, Default)]
pub struct RankTiming {
    /// Plan + point transfer + sorting ("setup": crosses in Fig. 9).
    pub setup: f64,
    /// NUFFT execution ("exec": squares in Fig. 9).
    pub exec: f64,
    /// Host-device data movement for inputs/outputs.
    pub transfer: f64,
}

impl RankTiming {
    pub fn total(&self) -> f64 {
        self.setup + self.exec + self.transfer
    }
}

/// Run one rank's task on a dedicated simulated device and report
/// stage timings. Points are Ewald-slice samples at random orientations
/// (density and geometry matching the application, not "rand" noise).
pub fn run_rank(task: &RankTask, seed: u64) -> RankTiming {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let n = task.n_grid;
    // build slice-structured points covering m samples
    let n_det = (task.m as f64).sqrt().sqrt().ceil() as usize * 4; // ~detector-ish tiling
    let geom = SliceGeometry {
        n_det: n_det.max(8),
        q_max: 2.0,
        k0: 10.0,
    };
    let per_slice = geom.points_per_slice();
    let n_slices = task.m.div_ceil(per_slice);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = [Vec::new(), Vec::new(), Vec::new()];
    'outer: for _ in 0..n_slices {
        let rot = Rotation::random(&mut rng);
        for q in geom.slice_points(&rot) {
            if coords[0].len() >= task.m {
                break 'outer;
            }
            coords[0].push(q[0]);
            coords[1].push(q[1]);
            coords[2].push(q[2]);
        }
    }
    let pts = Points { coords, dim: 3 };
    let iflag = match task.ttype {
        TransformType::Type1 => 1,
        TransformType::Type2 => -1,
    };
    let mut plan = Plan::<f64>::builder(task.ttype, &[n, n, n])
        .iflag(iflag)
        .eps(task.eps)
        .build(&dev)
        .expect("rank plan");
    plan.set_pts(&pts).expect("rank set_pts");
    let t_after_setup = plan.timings();
    let setup = t_after_setup.alloc + t_after_setup.h2d_pts + t_after_setup.sort;
    let n_modes = n * n * n;
    let (in_len, out_len) = match task.ttype {
        TransformType::Type1 => (pts.len(), n_modes),
        TransformType::Type2 => (n_modes, pts.len()),
    };
    let input = vec![Complex::new(1.0, 0.5); in_len];
    let mut output = vec![Complex::<f64>::ZERO; out_len];
    let mut exec = 0.0;
    let mut transfer = 0.0;
    for _ in 0..task.transforms {
        plan.execute(&input, &mut output).expect("rank execute");
        let t = plan.timings();
        exec += t.exec();
        transfer += t.h2d_data + t.d2h + t.alloc - t_after_setup.alloc;
    }
    RankTiming {
        setup,
        exec,
        transfer,
    }
}

/// One point of a weak-scaling sweep.
#[derive(Copy, Clone, Debug)]
pub struct ScalingPoint {
    pub ranks: usize,
    /// Wall-clock seconds for the stage across the node (single-queue
    /// contention per GPU).
    pub wall_total: f64,
    pub wall_setup: f64,
    pub wall_exec: f64,
}

/// Weak-scaling sweep: each rank gets the same `task`; ranks are
/// assigned to the node's GPUs round-robin. Each rank's problem is
/// simulated once on a worker thread with an independent device; the
/// scaling points for every rank count are then assembled from the
/// single-queue contention model (ranks are independent, so the r-rank
/// configuration uses the first r rank timings).
pub fn weak_scaling(
    node: &Node,
    task: &RankTask,
    max_ranks: usize,
    seed: u64,
) -> Vec<ScalingPoint> {
    // ranks run statistically identical problems (same sizes, different
    // random orientations), so a handful of distinct simulations
    // suffices; reuse them cyclically for large rank counts
    let distinct = max_ranks.min(4);
    let sampled: Vec<RankTiming> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..distinct)
            .map(|r| s.spawn(move |_| run_rank(task, seed + r as u64)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("rank thread panicked");
    let timings: Vec<RankTiming> = (0..max_ranks).map(|r| sampled[r % distinct]).collect();
    (1..=max_ranks)
        .map(|ranks| {
            // round-robin assignment; each GPU serializes its ranks
            let mut per_gpu_total = vec![0.0f64; node.gpus];
            let mut per_gpu_setup = vec![0.0f64; node.gpus];
            let mut per_gpu_exec = vec![0.0f64; node.gpus];
            for (r, t) in timings.iter().take(ranks).enumerate() {
                let g = r % node.gpus;
                per_gpu_total[g] += t.total();
                per_gpu_setup[g] += t.setup;
                per_gpu_exec[g] += t.exec;
            }
            ScalingPoint {
                ranks,
                wall_total: per_gpu_total.iter().cloned().fold(0.0, f64::max),
                wall_setup: per_gpu_setup.iter().cloned().fold(0.0, f64::max),
                wall_exec: per_gpu_exec.iter().cloned().fold(0.0, f64::max),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_task() -> RankTask {
        RankTask {
            n_grid: 16,
            m: 20_000,
            ttype: TransformType::Type2,
            transforms: 1,
            eps: 1e-6,
        }
    }

    #[test]
    fn rank_timing_components_positive() {
        let t = run_rank(&small_task(), 3);
        assert!(t.setup > 0.0);
        assert!(t.exec > 0.0);
        assert!(t.transfer > 0.0);
    }

    #[test]
    fn weak_scaling_flat_then_degrading() {
        let node = Node {
            name: "test-node",
            gpus: 2,
        };
        let pts = weak_scaling(&node, &small_task(), 4, 11);
        assert_eq!(pts.len(), 4);
        // flat up to #GPUs: 2 ranks no slower than ~1.3x of 1 rank
        assert!(pts[1].wall_total < 1.3 * pts[0].wall_total);
        // 4 ranks on 2 GPUs: roughly 2x one rank per GPU
        assert!(
            pts[3].wall_total > 1.6 * pts[1].wall_total,
            "expected deterioration: {:?}",
            pts
        );
    }

    #[test]
    fn table2_tasks_shapes() {
        let s = RankTask::slicing(16);
        let m = RankTask::merging(16);
        assert_eq!(s.n_grid, 41);
        assert_eq!(m.n_grid, 81);
        assert_eq!(m.transforms, 2);
        assert!(m.m > s.m);
        // density rho (eq. 16) of the unscaled tasks matches Table II
        let rho_s = 1_020_000.0 / (2.0f64 * 41.0).powi(3);
        let rho_m = 16_400_000.0 / (2.0f64 * 81.0).powi(3);
        assert!((rho_s - 1.85).abs() < 0.1, "{rho_s}");
        assert!((rho_m - 3.85).abs() < 0.1, "{rho_m}");
    }

    #[test]
    fn node_definitions() {
        assert_eq!(Node::cori_gpu().gpus, 8);
        assert_eq!(Node::summit().gpus, 6);
    }
}
