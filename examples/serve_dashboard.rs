//! A one-file operator's view of the serve layer: run a mixed-spec
//! traffic burst, then print everything observability gives you —
//! latency/queue/batch histograms with quantiles, the SLO health
//! verdict, one request's correlated timeline, and the Prometheus
//! text a scraper would see. A second act walks through an overload
//! episode: a persistent device fault opens a circuit breaker, open
//! requests fast-fail typed, and — once the fault clears and the
//! cooldown elapses in simulated time — the half-open trial recovers
//! the spec and the health verdict returns to `healthy`.
//!
//! ```bash
//! cargo run --release --example serve_dashboard
//! ```

use std::sync::Arc;

use cufinufft::prelude::*;
use gpu_sim::Device;
use gpu_sim::{FaultMode, FaultPlan};
use nufft_common::{gen_points, gen_strengths, PointDist, Shape};
use nufft_serve::{BreakerPolicy, NufftServer, ServeConfig, SloThresholds};
use nufft_trace::Trace;

const M: usize = 20_000;
const REQUESTS: u64 = 60;

fn quantile_line(report: &nufft_trace::TraceReport, name: &str) -> String {
    match report.histograms.get(name) {
        Some(h) if h.count > 0 => format!(
            "{name:24} n={:<4} p50={:.6} p90={:.6} p99={:.6} max={:.6}",
            h.count,
            h.p50().unwrap_or(0.0),
            h.p90().unwrap_or(0.0),
            h.p99().unwrap_or(0.0),
            h.max,
        ),
        _ => format!("{name:24} (no samples)"),
    }
}

fn main() -> Result<()> {
    let trace = Trace::new();
    let config = ServeConfig {
        queue_capacity: 128,
        max_batch: 8,
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = NufftServer::start(&Device::v100(), config)?;

    // a burst of three interleaved specs over shared geometry: the
    // cache and coalescer split the traffic into a handful of launches
    let pts = Arc::new(gen_points::<f32>(
        PointDist::Rand,
        2,
        M,
        Shape::d2(128, 128),
        7,
    ));
    let specs = [
        TransformSpec::type1(&[48, 48])
            .eps(1e-5)
            .precision(Precision::F32),
        TransformSpec::type1(&[64, 64])
            .eps(1e-4)
            .precision(Precision::F32),
        TransformSpec::type2(&[48, 48])
            .eps(1e-5)
            .precision(Precision::F32),
    ];
    let mut responses = Vec::new();
    for i in 0..REQUESTS {
        let spec = &specs[(i % specs.len() as u64) as usize];
        let input = gen_strengths::<f32>(spec.input_len(pts.len()), i + 1);
        responses.push(server.submit_wait(spec, &pts, input)?);
    }
    let sample_id = responses[0].request_id();
    for r in responses {
        r.wait().expect("request failed");
    }

    // --- live metrics snapshot -----------------------------------
    let report = trace.report();
    println!("--- histograms (seconds; batch/depth in counts) ---");
    for name in [
        "serve.latency",
        "serve.queue_wait",
        "serve.batch_size",
        "serve.queue_depth_hist",
    ] {
        println!("{}", quantile_line(&report, name));
    }

    // --- SLO verdict ---------------------------------------------
    let slo = SloThresholds {
        max_p99_latency_s: 2.0,
        ..SloThresholds::default()
    };
    println!("\n--- SLO report ---");
    print!("{}", server.report_with(slo));

    // --- one request's correlated lifecycle ----------------------
    println!("--- timeline of request {sample_id} ---");
    for ev in report.request_timeline(sample_id.0) {
        println!(
            "  {:>10.1} us  {:>10.1} us  {}",
            ev.ts_us, ev.dur_us, ev.name
        );
    }

    // --- what a scraper sees -------------------------------------
    println!("\n--- prometheus (serve_latency family) ---");
    for line in report.prometheus().lines() {
        if line.contains("serve_latency") {
            println!("{line}");
        }
    }

    server.shutdown();

    // --- act two: an overload episode, start to finish -----------
    // A persistent launch fault poisons one spec. Watch the breaker
    // open after the failure streak, fast-fail while open, and recover
    // bit-exact once the fault clears and the cooldown elapses.
    println!("\n--- overload episode (persistent fault -> breaker -> recovery) ---");
    let dev = Device::v100();
    let chaos_trace = Trace::new();
    let config = ServeConfig {
        recovery: RecoveryPolicy::none(),
        breaker: BreakerPolicy {
            failure_streak: 2,
            ..BreakerPolicy::default()
        },
        ..ServeConfig::default()
    }
    .with_trace(&chaos_trace);
    let server = NufftServer::start(&dev, config)?;
    let spec = TransformSpec::type1(&[48, 48])
        .eps(1e-5)
        .precision(Precision::F32)
        .method(Method::Sm);
    let input = gen_strengths::<f32>(spec.input_len(pts.len()), 1);

    dev.inject_faults(FaultPlan::new(3).fail_kernel("spread_SM", FaultMode::Always));
    for i in 1..=2 {
        let err = server
            .submit_wait(&spec, &pts, input.clone())?
            .wait()
            .unwrap_err();
        println!("  request {i}: {err}");
    }
    let err = server
        .submit_wait(&spec, &pts, input.clone())?
        .wait()
        .unwrap_err();
    println!("  request 3 fast-fails: {err}");
    let mid = server.report();
    println!(
        "  while open: health={} open_breakers={} quarantined={} shed_rate={:.4}",
        mid.health, mid.open_breakers, mid.stats.quarantined, mid.shed_rate
    );

    dev.clear_faults();
    dev.advance("dashboard.cooldown", 1.0);
    let recovered = server.submit_wait(&spec, &pts, input.clone())?.wait();
    let after = server.report();
    println!(
        "  after cooldown: {} (open_breakers={})",
        if recovered.is_ok() {
            "half-open trial served the spec again"
        } else {
            "still failing"
        },
        after.open_breakers
    );

    println!("\n--- prometheus (overload families) ---");
    for line in chaos_trace.report().prometheus().lines() {
        if line.contains("serve_breaker") || line.contains("serve_quarantine") {
            println!("{line}");
        }
    }

    server.shutdown();
    println!("\nOK");
    Ok(())
}
