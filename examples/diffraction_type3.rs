//! Wave diffraction with the type 3 (nonuniform -> nonuniform) NUFFT.
//!
//! The paper cites Fresnel/far-field diffraction as a NUFFT application
//! and lists type 3 as future work; this reproduction provides it. A
//! far-field pattern of an aperture sampled at scattered emitter
//! positions, evaluated at scattered observation frequencies, is exactly
//! `E(s_k) = sum_j a_j e^{-i s_k . x_j}` — a 2D type 3 transform.
//! Run with: `cargo run --release --example diffraction_type3`

use cufinufft::{GpuOpts, GpuType3Plan};
use gpu_sim::Device;
use nufft_common::{Complex, Points};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // aperture: two slits of scattered emitters (double-slit experiment
    // with irregular sampling)
    let per_slit = 4000;
    let slit_sep = 6.0; // centre-to-centre
    let slit_w = 0.35;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for slit in [-0.5, 0.5] {
        for _ in 0..per_slit {
            xs.push(slit * slit_sep + rng.random_range(-slit_w..slit_w));
            ys.push(rng.random_range(-2.0..2.0));
        }
    }
    let m = xs.len();
    let amps = vec![Complex::new(1.0, 0.0); m];
    let sources = Points::<f64> {
        coords: [xs, ys, Vec::new()],
        dim: 2,
    };

    // observation frequencies along a scattered arc of scattering angles
    let n_obs = 3000;
    let k0 = 40.0; // wavenumber
    let mut sx = Vec::new();
    let mut sy = Vec::new();
    for _ in 0..n_obs {
        let theta: f64 = rng.random_range(-0.4..0.4); // radians off-axis
        sx.push(k0 * theta.sin());
        sy.push(k0 * rng.random_range(-0.02..0.02f64));
    }
    let targets = Points::<f64> {
        coords: [sx.clone(), sy, Vec::new()],
        dim: 2,
    };

    let device = Device::v100();
    let mut plan = GpuType3Plan::<f64>::new(2, -1, 1e-8, GpuOpts::default(), &device).unwrap();
    plan.set_pts(&sources, &targets).unwrap();
    println!("type 3: {m} scattered emitters -> {n_obs} scattered observation angles");
    println!(
        "internal fine grid {:?}, spreading via {:?}",
        plan.fine_grid_shape().n,
        plan.spread_method()
    );
    let mut field = vec![Complex::<f64>::ZERO; n_obs];
    plan.execute(&amps, &mut field).unwrap();
    let t = plan.timings();
    println!(
        "simulated V100: spread {:.3} ms, fft {:.3} ms, total exec {:.3} ms\n",
        t.spread_interp * 1e3,
        t.fft * 1e3,
        t.exec() * 1e3
    );

    // the double slit must produce interference fringes with spacing
    // delta(theta) ~ 2 pi / (k0 * d); verify by locating intensity minima
    let mut order: Vec<usize> = (0..n_obs).collect();
    order.sort_by(|&a, &b| sx[a].partial_cmp(&sx[b]).unwrap());
    println!("far-field intensity vs transverse frequency (binned):");
    let bins = 48;
    let smin = -k0 * 0.4f64.sin();
    let smax = -smin;
    let mut acc = vec![0.0f64; bins];
    let mut cnt = vec![0usize; bins];
    for k in 0..n_obs {
        let b = (((sx[k] - smin) / (smax - smin)) * bins as f64) as usize;
        if b < bins {
            acc[b] += field[k].norm_sqr();
            cnt[b] += 1;
        }
    }
    let peak = acc
        .iter()
        .zip(&cnt)
        .map(|(a, &c)| if c > 0 { a / c as f64 } else { 0.0 })
        .fold(0.0f64, f64::max);
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for b in 0..bins {
        let v = if cnt[b] > 0 {
            acc[b] / cnt[b] as f64 / peak
        } else {
            0.0
        };
        let bar: String = (0..(v * 40.0) as usize).map(|_| '#').collect();
        let c = ramp[((v * 9.0) as usize).min(9)];
        println!(
            "{:>6.2} |{bar}{c}",
            smin + (b as f64 + 0.5) * (smax - smin) / bins as f64
        );
    }
    // fringe period in s-space is 2 pi / slit_sep ~ 1.047
    let expected_period = std::f64::consts::TAU / slit_sep;
    println!("\nexpected fringe period in s: {expected_period:.3} (slit separation {slit_sep})");
    // verify numerically: autocorrelation of the binned intensity should
    // peak near the expected period
    let per_bin = (smax - smin) / bins as f64;
    let lag = (expected_period / per_bin).round() as usize;
    let mean = acc.iter().sum::<f64>() / bins as f64;
    let var: f64 = acc.iter().map(|a| (a - mean).powi(2)).sum();
    let cov: f64 = (0..bins - lag)
        .map(|b| (acc[b] - mean) * (acc[b + lag] - mean))
        .sum();
    let ac = cov / var;
    println!("autocorrelation at one fringe period: {ac:.3} (strong positive = fringes)");
    assert!(ac > 0.3, "double-slit fringes should be periodic");
    println!("OK");
}
