//! Export a Chrome/Perfetto trace of one 3D type-1 SM transform.
//!
//! Runs the same workload as `device_profile`, but with the
//! `nufft-trace` session attached: host-side plan spans, per-stage
//! device spans, simulated-GPU kernel/memcpy lanes, and the
//! load-balance counters all land in `results/device_trace.trace.json`, which
//! loads directly into `chrome://tracing` or https://ui.perfetto.dev.
//! Run with: `cargo run --release --example device_trace`

use cufinufft_repro::traced_type1_3d;
use nufft_common::workload::PointDist;

fn main() {
    let report = traced_type1_3d(64, PointDist::Rand, 11);

    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/device_trace.trace.json";
    std::fs::write(path, report.chrome_json()).expect("write trace");
    println!("wrote {path} ({} events)", report.events.len());

    println!("\nsimulated GPU time by kernel:");
    for (name, total) in report.device_busy_by_name().into_iter().take(8) {
        println!("  {name:<24} {:>10.3} ms", total * 1e3);
    }

    println!("\nstage totals (device clock):");
    for stage in ["stage.sort", "stage.spread", "stage.fft", "stage.deconv"] {
        println!(
            "  {stage:<24} {:>10.3} ms",
            report.device_span_total(stage) * 1e3
        );
    }

    println!("\ncounters / gauges:\n{}", report.prometheus());
}
