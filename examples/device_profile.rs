//! Where does a transform's (simulated) GPU time go?
//!
//! Runs one 3D type-1 NUFFT and prints an nvprof-style per-kernel
//! profile of the simulated device timeline — reproducing Table I's
//! observation that spreading dominates 3D type-1 execution.
//! Run with: `cargo run --release --example device_profile`

use cufinufft::Plan;
use gpu_sim::Device;
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, TransformType};

fn main() {
    let device = Device::v100();
    let n = 64usize;
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[n, n, n])
        .eps(1e-5)
        .build(&device)
        .unwrap();
    let m = 2 * n * n * n; // rho ~ 0.25 of the fine grid
    let pts = gen_points::<f32>(PointDist::Rand, 3, m, plan.fine_grid_shape(), 11);
    let cs = gen_strengths::<f32>(m, 12);
    plan.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f32>::ZERO; n * n * n];
    plan.execute(&cs, &mut out).unwrap();

    println!(
        "3D type 1, N = {n}^3, M = {m}, eps = 1e-5, method {:?}\n",
        plan.spread_method()
    );
    println!("{}", gpu_sim::profile_table(&device.timeline()));
    let t = plan.timings();
    println!(
        "spread fraction of exec: {:.1}% (paper Table I: >90% for 3D type 1)",
        t.spread_interp / t.exec() * 100.0
    );
}
