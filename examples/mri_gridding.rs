//! MRI gridding: reconstruct an image from radial (non-Cartesian)
//! k-space samples with a density-compensated adjoint NUFFT — the
//! application domain gpuNUFFT was built for (paper Sec. I).
//!
//! A synthetic phantom (sum of Gaussian blobs, analytic Fourier
//! transform) is "scanned" along radial spokes; the reconstruction is a
//! single type 1 NUFFT of the ramp-weighted samples. Run with:
//! `cargo run --release --example mri_gridding`

use cufinufft::Plan;
use gpu_sim::Device;
use nufft_common::{Complex, Points, TransformType};

/// 2D Gaussian-blob phantom with analytic Fourier transform.
struct Phantom {
    blobs: Vec<([f64; 2], f64, f64)>, // center, sigma, amplitude
}

impl Phantom {
    fn brain_like() -> Self {
        Phantom {
            blobs: vec![
                ([0.0, 0.0], 1.1, 1.0),     // head
                ([-0.5, 0.3], 0.35, -0.45), // ventricle
                ([0.5, 0.3], 0.35, -0.45),  // ventricle
                ([0.0, -0.6], 0.25, 0.6),   // lesion
                ([0.2, 0.7], 0.15, 0.5),    // small feature
            ],
        }
    }

    fn image(&self, x: f64, y: f64) -> f64 {
        self.blobs
            .iter()
            .map(|(c, s, a)| {
                let d2 = (x - c[0]).powi(2) + (y - c[1]).powi(2);
                a * (-d2 / (2.0 * s * s)).exp()
            })
            .sum()
    }

    /// Continuous FT (paper eq. 4 convention) at frequency (kx, ky).
    fn fourier(&self, kx: f64, ky: f64) -> Complex<f64> {
        let mut acc = Complex::ZERO;
        for (c, s, a) in &self.blobs {
            let mag =
                a * std::f64::consts::TAU * s * s * (-(s * s) * (kx * kx + ky * ky) / 2.0).exp();
            acc += Complex::cis(-(kx * c[0] + ky * c[1])).scale(mag);
        }
        acc
    }
}

fn main() {
    let n = 192usize; // image grid
    let n_spokes = 400;
    let n_read = 256; // samples per spoke
    let phantom = Phantom::brain_like();

    // radial trajectory in NUFFT frequency units [-pi, pi)
    let k_max = 0.95 * std::f64::consts::PI;
    let mut kx = Vec::with_capacity(n_spokes * n_read);
    let mut ky = Vec::with_capacity(n_spokes * n_read);
    let mut weights = Vec::with_capacity(n_spokes * n_read);
    for s in 0..n_spokes {
        let theta = std::f64::consts::PI * s as f64 / n_spokes as f64;
        for r in 0..n_read {
            let t = (r as f64 / (n_read - 1) as f64) * 2.0 - 1.0; // [-1, 1]
            let k = k_max * t;
            kx.push(k * theta.cos());
            ky.push(k * theta.sin());
            // ramp (density compensation) weight for radial sampling
            weights.push(k.abs().max(k_max / n_read as f64));
        }
    }
    let m = kx.len();
    println!("radial acquisition: {n_spokes} spokes x {n_read} samples = {m} k-space points");

    // "measured" k-space data from the analytic phantom; the NUFFT grid
    // convention puts image pixels on the integer lattice, so physical
    // frequencies scale by n / 2 pi (see mtip::recon for the same units)
    let phys = n as f64 / std::f64::consts::TAU;
    let data: Vec<Complex<f64>> = kx
        .iter()
        .zip(ky.iter())
        .zip(weights.iter())
        .map(|((&x, &y), &w)| phantom.fourier(x * phys, y * phys).scale(w * phys * phys))
        .collect();

    // adjoint NUFFT (type 1) on the simulated GPU
    let device = Device::v100();
    let mut plan = Plan::<f64>::builder(TransformType::Type1, &[n, n])
        .iflag(1) // e^{+i k.x}: adjoint of the forward e^{-i k.x}
        .eps(1e-9)
        .build(&device)
        .expect("plan");
    let pts = Points::<f64> {
        coords: [kx, ky, Vec::new()],
        dim: 2,
    };
    plan.set_pts(&pts).expect("set_pts");
    let mut img = vec![Complex::<f64>::ZERO; n * n];
    plan.execute(&data, &mut img).expect("execute");
    let t = plan.timings();
    println!(
        "gridding recon on simulated V100: exec {:.3} ms, total+mem {:.3} ms",
        t.exec() * 1e3,
        t.total_mem() * 1e3
    );

    // compare against the phantom (normalized correlation; the adjoint
    // with ramp weights is an approximate inverse up to smooth shading)
    let h = std::f64::consts::TAU / n as f64;
    let mut dot = 0.0;
    let mut nrm = 0.0;
    let mut ref2 = 0.0;
    for (i, px) in img.iter().enumerate().take(n * n) {
        let (ix, iy) = (i % n, i / n);
        let x = -std::f64::consts::PI + ix as f64 * h;
        let y = -std::f64::consts::PI + iy as f64 * h;
        let truth = phantom.image(x, y);
        let rec = px.re;
        dot += rec * truth;
        nrm += rec * rec;
        ref2 += truth * truth;
    }
    let corr = dot / (nrm.sqrt() * ref2.sqrt());
    println!("image correlation with phantom: {corr:.4}");
    assert!(corr > 0.95, "reconstruction should strongly correlate");

    // quick ASCII rendering of the central rows
    println!("\nreconstruction (centre crop, ASCII):");
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let peak = img.iter().map(|z| z.re).fold(f64::MIN, f64::max);
    for iy in (n / 2 - 12..n / 2 + 12).step_by(1) {
        let row: String = (n / 2 - 24..n / 2 + 24)
            .map(|ix| {
                let v = (img[iy * n + ix].re / peak).clamp(0.0, 1.0);
                ramp[(v * 9.0) as usize]
            })
            .collect();
        println!("  {row}");
    }
    println!("OK");
}
