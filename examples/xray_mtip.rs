//! X-ray single-particle reconstruction with M-TIP (paper Sec. V).
//!
//! Reconstructs a synthetic molecule's 3D electron density from
//! Ewald-sphere diffraction slices at random orientations, driving
//! thousands of type 1/2 NUFFTs on the simulated GPU, then shows the
//! single-node weak scaling of the per-rank NUFFT stages (Fig. 9).
//! Run with: `cargo run --release --example xray_mtip`

use gpu_sim::Device;
use mtip::{reconstruct, weak_scaling, MtipConfig, Node, RankTask};

fn main() {
    // -- reconstruction ---------------------------------------------------
    let cfg = MtipConfig {
        n_grid: 24,
        n_images: 16,
        n_det: 16,
        eps: 1e-9,
        iterations: 8,
        n_blobs: 5,
        match_orientations: true,
        n_decoys: 3,
        cg_iters: 6,
        oracle_phases: true, // validation mode; see MtipConfig docs
        hio_beta: 0.0,
        tight_support: false,
        shrink_wrap_every: 0,
        shrink_wrap_threshold: 0.1,
        init_truth: false,
        recovery: mtip::RecoveryPolicy::default(),
        seed: 2024,
    };
    println!(
        "M-TIP: {} images x {}^2 pixels -> {} nonuniform points per pass, {}^3 grid",
        cfg.n_images,
        cfg.n_det,
        cfg.n_images * cfg.n_det * cfg.n_det,
        cfg.n_grid
    );
    let device = Device::v100();
    let res = reconstruct(&cfg, &device).expect("reconstruction failed");
    println!("\niter | density err | orientation accuracy");
    for (i, (e, a)) in res
        .errors
        .iter()
        .zip(res.orientation_accuracy.iter())
        .enumerate()
    {
        println!("{:>4} | {:>11.4} | {:>6.0}%", i, e, a * 100.0);
    }
    let t = res.timings;
    println!("\nsimulated-GPU stage totals:");
    println!("  set_pts  {:>8.3} ms", t.setpts * 1e3);
    println!("  slicing  {:>8.3} ms (type 2 NUFFTs)", t.slicing * 1e3);
    println!("  matching {:>8.3} ms", t.matching * 1e3);
    println!("  merging  {:>8.3} ms (type 1/2 NUFFT CG)", t.merging * 1e3);
    assert!(
        res.errors.last().unwrap() < &0.35,
        "reconstruction should converge: {:?}",
        res.errors
    );
    assert!(res.orientation_accuracy.last().unwrap() >= &0.75);

    // resolution assessment: Fourier shell correlation vs ground truth
    let fsc = mtip::fourier_shell_correlation(&res.density, &res.truth, cfg.n_grid);
    println!(
        "
FSC vs ground truth (shell: correlation):"
    );
    let line: Vec<String> = fsc
        .iter()
        .enumerate()
        .map(|(r, c)| format!("{r}:{c:.2}"))
        .collect();
    println!("  {}", line.join("  "));
    match mtip::fsc_resolution(&fsc, 0.5) {
        Some(shell) => println!("FSC=0.5 resolution: shell {shell} of {}", fsc.len() - 1),
        None => println!("FSC stays above 0.5 to the grid Nyquist (resolution grid-limited)"),
    }

    // -- weak scaling (paper Fig. 9, scaled problem) ----------------------
    println!("\nweak scaling of the Table II slicing task (scaled 1/64) on Summit:");
    let node = Node::summit();
    let pts = weak_scaling(&node, &RankTask::slicing(64), node.gpus + 3, 7);
    let base = pts[0].wall_total;
    println!("ranks | wall (s)  | vs 1 rank");
    for p in &pts {
        let marker = if p.ranks == node.gpus {
            "  <- one rank per GPU"
        } else {
            ""
        };
        println!(
            "{:>5} | {:>9.5} | {:>7.2}x{}",
            p.ranks,
            p.wall_total,
            p.wall_total / base,
            marker
        );
    }
    println!("OK");
}
