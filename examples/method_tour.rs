//! A tour of the three spreading methods and the plan-reuse pattern.
//!
//! Demonstrates (1) how GM / GM-sort / SM behave on friendly ("rand")
//! and adversarial ("cluster") point distributions — the heart of the
//! paper's load-balancing contribution — and (2) why the plan interface
//! matters: repeated transforms with fresh strength vectors pay the
//! sorting cost only once. Run with:
//! `cargo run --release --example method_tour`

use cufinufft::{Method, Plan};
use gpu_sim::Device;
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, TransformType};

fn main() {
    let n = 512usize;
    let eps = 1e-5;
    let m = 1_000_000;

    println!("## spreading methods vs point distribution (2D {n}x{n}, eps={eps:.0e}, M={m})\n");
    println!(
        "{:>9} | {:>12} | {:>12} | {:>12}",
        "dist", "GM", "GM-sort", "SM"
    );
    for dist in [PointDist::Rand, PointDist::Cluster] {
        let mut row = format!(
            "{:>9} |",
            if dist == PointDist::Rand {
                "rand"
            } else {
                "cluster"
            }
        );
        for method in [Method::Gm, Method::GmSort, Method::Sm] {
            let device = Device::v100();
            device.set_record_timeline(false);
            let mut plan = Plan::<f32>::builder(TransformType::Type1, &[n, n])
                .eps(eps)
                .method(method)
                .build(&device)
                .unwrap();
            let pts = gen_points::<f32>(dist, 2, m, plan.fine_grid_shape(), 1);
            let cs = gen_strengths::<f32>(m, 2);
            plan.set_pts(&pts).unwrap();
            let mut out = vec![Complex::<f32>::ZERO; n * n];
            plan.execute(&cs, &mut out).unwrap();
            row += &format!(" {:>9.2} ns |", plan.timings().exec() / m as f64 * 1e9);
        }
        println!("{row}");
    }
    println!("\n(ns per nonuniform point, 'exec' on the simulated V100 — note GM's");
    println!(" collapse on 'cluster' and SM's insensitivity, paper Figs. 2 & 6)\n");

    // plan reuse: iterative-solver pattern
    println!("## plan reuse: 20 transforms with fresh strengths (the NUFFT-inversion");
    println!("## use case the plan/setpts/execute interface exists for)\n");
    let device = Device::v100();
    device.set_record_timeline(false);
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[n, n])
        .eps(eps)
        .build(&device)
        .unwrap();
    let pts = gen_points::<f32>(PointDist::Rand, 2, m, plan.fine_grid_shape(), 3);
    let t0 = device.clock();
    plan.set_pts(&pts).unwrap();
    let setup = device.clock() - t0;
    let mut out = vec![Complex::<f32>::ZERO; n * n];
    let mut exec_sum = 0.0;
    for k in 0..20u64 {
        let cs = gen_strengths::<f32>(m, 100 + k);
        plan.execute(&cs, &mut out).unwrap();
        exec_sum += plan.timings().exec();
    }
    println!("one-time setup (transfer + sort): {:>8.3} ms", setup * 1e3);
    println!(
        "20 executes:                      {:>8.3} ms total",
        exec_sum * 1e3
    );
    println!(
        "amortized:                        {:>8.3} ms per transform (vs {:.3} ms if re-sorting every time)",
        exec_sum / 20.0 * 1e3,
        (exec_sum / 20.0 + setup) * 1e3
    );
    println!("OK");
}
