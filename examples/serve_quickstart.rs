//! NUFFT-as-a-service in one file: start a plan server, submit
//! concurrent `TransformSpec` requests, and watch the cache and
//! coalescing work through the serve metrics.
//!
//! ```bash
//! cargo run --release --example serve_quickstart
//! ```

use std::sync::Arc;

use cufinufft::prelude::*;
use gpu_sim::Device;
use nufft_common::{gen_points, gen_strengths, PointDist, Shape};
use nufft_serve::{block_on, join_all, NufftServer, ServeConfig};
use nufft_trace::Trace;

const N: usize = 128;
const M: usize = 50_000;
const CLIENTS: usize = 8;

fn main() -> Result<()> {
    let trace = Trace::new();
    let config = ServeConfig {
        max_batch: 4,
        ..ServeConfig::default()
    }
    .with_trace(&trace);
    let server = NufftServer::start(&Device::v100(), config)?;

    // the request: what to compute, nothing about how fast. The same
    // value keys the server's plan cache and drives PlanBuilder.
    let spec = TransformSpec::type1(&[N, N])
        .eps(1e-6)
        .precision(Precision::F32);
    let pts = Arc::new(gen_points::<f32>(
        PointDist::Rand,
        2,
        M,
        Shape::d2(2 * N, 2 * N),
        7,
    ));

    // eight "clients" hit the server at once with the same geometry:
    // one plan is built, one bin-sort runs, and the requests coalesce
    // into stacked batched launches
    let responses: Vec<_> = (0..CLIENTS)
        .map(|i| server.submit(&spec, &pts, gen_strengths::<f32>(M, i as u64)))
        .collect::<Result<_>>()?;
    let results = block_on(join_all(responses));
    for (i, r) in results.iter().enumerate() {
        let modes = r.as_ref().expect("request failed");
        println!("client {i}: {} modes, f[0] = {}", modes.len(), modes[0]);
    }

    // a follow-up request with the same spec: pure cache hit
    let again = server.submit(&spec, &pts, gen_strengths::<f32>(M, 99))?;
    block_on(again).expect("warm request");

    let stats = server.stats();
    println!(
        "\nserved {} requests: {} plan build(s), {} cache hit(s), \
         {} batched launch(es), {} requests coalesced",
        stats.completed, stats.cache_misses, stats.cache_hits, stats.batches, stats.coalesced
    );

    // the same numbers export as Prometheus text for scraping
    let report = trace.report();
    println!("\n--- prometheus (serve.* series) ---");
    for line in report.prometheus().lines() {
        if line.contains("serve_") || line.contains("serve.") {
            println!("{line}");
        }
    }
    let builds = report.spans_named("plan.build").len();
    println!("\nplan.build spans in the trace: {builds} (cache hits built nothing)");
    assert_eq!(
        builds, 1,
        "every request shares one spec: exactly one build"
    );
    println!("OK");
    Ok(())
}
