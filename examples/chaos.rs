//! Chaos tour: run the same transform under every injectable fault
//! class and show what the recovery layer does with each.
//!
//! The simulated device misbehaves on cue (`gpu_sim::FaultPlan`); the
//! plan's `RecoveryPolicy` retries transient faults with backoff,
//! shrinks `execute_many` chunks on OOM, and falls back from an
//! infeasible SM request to GM-sort. Each scenario prints the outcome
//! plus the plan's `RecoveryReport`, and the last one exports a Chrome
//! trace in which the injected faults and recovery counters are
//! visible. Run with: `cargo run --release --example chaos`

use cufinufft::{GpuOpts, Method, Plan, RecoveryPolicy, Tuning};
use gpu_sim::{Device, FaultMode, FaultPlan};
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, TransformType};
use nufft_trace::Trace;

const N: usize = 64;
const M: usize = 20_000;
const B: usize = 8;

/// Build + set_pts + execute_many under the given options; print the
/// outcome and the recovery report.
fn run(label: &str, dev: &Device, opts: GpuOpts) {
    print!("{label:<44}");
    let mut plan = match Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .ntransf(B)
        .opts(opts)
        .build(dev)
    {
        Ok(p) => p,
        Err(e) => {
            println!("build failed: {e}");
            return;
        }
    };
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 7);
    if let Err(e) = plan.set_pts(&pts) {
        println!("set_pts failed: {e}");
        return;
    }
    let batch = gen_strengths::<f32>(M * B, 9);
    let mut out = vec![Complex::<f32>::ZERO; N * N * B];
    match plan.execute_many(&batch, &mut out) {
        Ok(()) => println!("ok"),
        Err(e) => println!("typed error: {e}"),
    }
    let rep = plan.recovery_report();
    if rep.is_clean() {
        println!("    report: clean");
    } else {
        println!(
            "    report: {} retries, {} recovered, {} unrecovered, {} fallbacks, {} shrinks{}",
            rep.retries,
            rep.recovered,
            rep.unrecovered,
            rep.method_fallbacks,
            rep.chunk_shrinks,
            rep.final_chunk
                .map(|c| format!(" (final chunk {c})"))
                .unwrap_or_default(),
        );
        for e in &rep.events {
            println!("      - {e}");
        }
    }
}

fn recovering() -> GpuOpts {
    GpuOpts {
        recovery: RecoveryPolicy::default(),
        ..GpuOpts::default()
    }
}

fn main() {
    println!("chaos tour: {N}x{N} type 1, M = {M}, batch of {B}\n");

    let dev = Device::v100();
    run("fault-free baseline", &dev, recovering());

    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(1).fail_memcpy("htod", FaultMode::Once));
    run("transient H2D glitch (retried)", &dev, recovering());

    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(2).fail_kernel("spread", FaultMode::Once));
    run("transient launch fault (retried)", &dev, recovering());

    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(3).fail_kernel("spread", FaultMode::Always));
    run(
        "persistent launch fault (bounded give-up)",
        &dev,
        recovering(),
    );

    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(4).fail_alloc_nth(5, FaultMode::Once));
    run("one-shot OOM at allocation 5 (retried)", &dev, recovering());

    // cap memory so the full batch staging cannot fit: the plan halves
    // its chunk size until it does
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(5).mem_cap(2_000_000));
    run(
        "capacity cap (chunks shrink)",
        &dev,
        GpuOpts {
            max_batch: B,
            ..recovering()
        },
    );

    // explicit SM with an impossible budget: fallback policy downgrades
    // to GM-sort instead of refusing the plan
    let dev = Device::v100();
    run(
        "SM over budget, fallback allowed",
        &dev,
        GpuOpts {
            method: Method::Sm,
            tuning: Tuning {
                shared_mem_budget: 64,
                ..Tuning::default()
            },
            recovery: RecoveryPolicy {
                allow_method_fallback: true,
                ..RecoveryPolicy::default()
            },
            ..GpuOpts::default()
        },
    );

    let dev = Device::v100();
    run(
        "SM over budget, fail-fast policy",
        &dev,
        GpuOpts {
            method: Method::Sm,
            tuning: Tuning {
                shared_mem_budget: 64,
                ..Tuning::default()
            },
            recovery: RecoveryPolicy::none(),
            ..GpuOpts::default()
        },
    );

    // traced run: injected faults and recovery actions land in the
    // Chrome export next to the kernels they disrupted
    let dev = Device::v100();
    dev.inject_faults(
        FaultPlan::new(6)
            .fail_memcpy("htod", FaultMode::Once)
            .stall_memcpy("dtoh", 0.001),
    );
    let trace = Trace::new();
    let _on = trace.activate();
    run(
        "traced run (faults visible in export)",
        &dev,
        GpuOpts::default().with_tracing(&trace),
    );
    let report = trace.report();
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/chaos.trace.json";
    std::fs::write(path, report.chrome_json()).expect("write trace");
    println!("\nwrote {path}; fault/recovery counters:");
    for (name, v) in report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("gpu.faults") || k.starts_with("recovery"))
    {
        println!("  {name:<28} {v}");
    }
}
