//! Quickstart: a 2D type 1 NUFFT on the simulated GPU, with accuracy
//! verification against the CPU library, a look at the timing report,
//! and a batched many-vector execution.
//!
//! Run with: `cargo run --release --example quickstart`

use cufinufft::Plan;
use gpu_sim::Device;
use nufft_common::metrics::rel_l2;
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, TransformType};

fn main() {
    // 1. a simulated V100 (the substitution for real CUDA hardware)
    let device = Device::v100();

    // 2. plan a 2D type 1 transform: 256x256 output modes, 1e-6 accuracy
    let n = 256usize;
    let eps = 1e-6;
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[n, n])
        .eps(eps)
        .iflag(-1) // sign of the exponential (paper eq. 1)
        .build(&device)
        .expect("plan");
    println!(
        "planned {}x{} type 1, kernel width {} ({:?} spreading), fine grid {:?}",
        n,
        n,
        plan.kernel().w,
        plan.spread_method(),
        plan.fine_grid_shape().n,
    );

    // 3. random nonuniform points and strengths
    let m = 200_000;
    let pts = gen_points::<f32>(PointDist::Rand, 2, m, plan.fine_grid_shape(), 42);
    let strengths = gen_strengths::<f32>(m, 43);

    // 4. set points once (sorts them on the device) ...
    plan.set_pts(&pts).expect("set_pts");

    // 5. ... then execute, re-using the plan for several strength vectors
    let mut modes = vec![Complex::<f32>::ZERO; n * n];
    plan.execute(&strengths, &mut modes).expect("execute");
    let t = plan.timings();
    println!("\nsimulated V100 timings:");
    println!(
        "  exec       {:>9.3} ms  (spread {:.3} + fft {:.3} + deconv {:.3})",
        t.exec() * 1e3,
        t.spread_interp * 1e3,
        t.fft * 1e3,
        t.deconv * 1e3
    );
    println!("  total      {:>9.3} ms  (exec + sorting)", t.total() * 1e3);
    println!(
        "  total+mem  {:>9.3} ms  (incl. alloc + host-device transfers)",
        t.total_mem() * 1e3
    );
    println!(
        "  throughput {:>9.1} Mpts/s (exec)",
        m as f64 / t.exec() / 1e6
    );

    // 6. many strength vectors at once: the point sort is reused, the
    // FFTs run batched, and chunk transfers hide under compute on two
    // simulated streams
    let b = 8;
    let stacked: Vec<Complex<f32>> = (0..b)
        .flat_map(|v| gen_strengths::<f32>(m, 50 + v as u64))
        .collect();
    let mut out = vec![Complex::<f32>::ZERO; n * n * b];
    plan.execute_many(&stacked, &mut out).expect("execute_many");
    let tb = plan.timings();
    println!(
        "\nbatched {b} transforms: {:.3} ms wall ({:.3} ms hidden by overlap, {} chunks)",
        tb.pipe_wall * 1e3,
        tb.overlap_saving() * 1e3,
        plan.batch_timings().chunks.len(),
    );
    println!(
        "  vs {b} sequential executes: {:.3} ms",
        t.total_mem() * b as f64 * 1e3
    );

    // 7. verify against the CPU library at high accuracy
    let mut cpu_plan = finufft_cpu::Plan::<f64>::new(
        finufft_cpu::TransformType::Type1,
        &[n, n],
        -1,
        1e-12,
        finufft_cpu::Opts::default(),
    )
    .expect("cpu plan");
    let pts64 = nufft_common::Points::<f64> {
        coords: [
            pts.x().iter().map(|&v| v as f64).collect(),
            pts.y().iter().map(|&v| v as f64).collect(),
            Vec::new(),
        ],
        dim: 2,
    };
    cpu_plan.set_pts(pts64).expect("cpu pts");
    let strengths64: Vec<Complex<f64>> = strengths.iter().map(|z| z.cast()).collect();
    let mut truth = vec![Complex::<f64>::ZERO; n * n];
    cpu_plan
        .execute(&strengths64, &mut truth)
        .expect("cpu exec");
    let err = rel_l2(&modes, &truth);
    println!("\nrelative l2 error vs CPU reference: {err:.3e} (requested {eps:.0e})");
    assert!(err < 10.0 * eps, "accuracy regression");
    println!("OK");
}
