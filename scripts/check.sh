#!/usr/bin/env bash
# Pre-merge gate: formatting, lints (deny warnings), and the test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test -q"
cargo test -q

echo "== cargo test -q --test fault_injection (chaos suite)"
cargo test -q --test fault_injection

# Serving layer (DESIGN.md §5i): cache/coalescing/backpressure suite
# runs in the workspace pass above; SERVE=full adds the randomized
# multi-client stress sweep (every result verified against a direct
# single-plan execution).
if [[ "${SERVE:-quick}" == "full" ]]; then
  echo "== SERVE=full randomized multi-client serve sweep"
  SERVE=full cargo test -q -p nufft-serve --test serve \
    randomized_multi_client_sweep -- --nocapture
else
  echo "== serve suite ran in the workspace pass (SERVE=full for the stress sweep)"
fi

# Static kernel verification (DESIGN.md §5m): the symbolic access-plan
# checker proves every shipped kernel bounds-safe, race-class-clean,
# contract-consistent, and launch-feasible over the quick spec matrix,
# then the source-policy scanner runs against scripts/lint-allow.txt.
# Any error-level finding fails the build. LINT=full widens the plan
# matrix (1D, full eps ladder, M_sub/bin sweeps, large M).
if [[ "${LINT:-quick}" == "full" ]]; then
  echo "== LINT=full static verifier (widened plan matrix + source lints)"
  cargo run -q -p nufft-lint -- --full
else
  echo "== static verifier, quick tier (LINT=full for the widened matrix)"
  cargo run -q -p nufft-lint
fi

# Race / access-contract checking (DESIGN.md §5h): every shipped
# spread/interp/bin kernel must trace clean, the deliberately racy
# variant must be flagged. HAZARD=full widens to 3D and f64.
if [[ "${HAZARD:-quick}" == "full" ]]; then
  echo "== HAZARD=full race-detector suite (3D + f64 sweep)"
  HAZARD=full cargo test -q --test hazard
else
  echo "== race-detector suite (quick tier; HAZARD=full for the sweep)"
  cargo test -q --test hazard
fi

# Parallel block execution (DESIGN.md §5l): the simulator's host thread
# pool must be bitwise-invisible. The fixed serial-vs-parallel matrix
# (gpu-sim unit tests + full-plan par_equiv) runs in the workspace pass
# above and again here explicitly; PAR=full widens par_equiv to the
# multi-seed, all-methods sweep.
if [[ "${PAR:-quick}" == "full" ]]; then
  echo "== PAR=full multi-seed parallel-equivalence sweep"
  PAR=full cargo test -q -p cufinufft --test par_equiv
else
  echo "== parallel-equivalence matrix (quick tier; PAR=full for the sweep)"
  cargo test -q -p cufinufft --test par_equiv
fi

# Accuracy conformance matrix vs the direct-NUDFT oracle (DESIGN.md §5g).
# Quick tier (288 cells) by default; CONFORMANCE=full runs the whole
# 3040-cell sweep (clustered points, odd-composite/non-square/prime
# grids, denser tolerance ladder) — ~2 min in release.
if [[ "${CONFORMANCE:-quick}" == "full" ]]; then
  echo "== CONFORMANCE=full conformance matrix (release)"
  CONFORMANCE=full cargo test -q --release -p nufft-conformance --test conformance \
    emit_conformance_json -- --nocapture
else
  echo "== conformance matrix, quick tier (release)"
  cargo test -q --release -p nufft-conformance --test conformance \
    emit_conformance_json -- --nocapture
fi

if [[ "${CHAOS:-0}" != "0" ]]; then
  echo "== CHAOS=1 randomized probabilistic-fault sweep"
  CHAOS=1 cargo test -q --test fault_injection chaos_randomized -- --nocapture
fi

# Serve-layer chaos acceptance (DESIGN.md §5k): overload + persistent
# faults against the breaker/shed/supervision stack. The single-seed
# smoke runs in the workspace pass above; SERVE_CHAOS=1 widens the
# acceptance scenario to a multi-seed sweep.
if [[ "${SERVE_CHAOS:-0}" != "0" ]]; then
  echo "== SERVE_CHAOS=1 multi-seed serve chaos sweep"
  SERVE_CHAOS=1 cargo test -q -p nufft-serve --test chaos_serve -- --nocapture
else
  echo "== serve chaos smoke ran in the workspace pass (SERVE_CHAOS=1 for the multi-seed sweep)"
fi

# Wall-clock bench trajectory (DESIGN.md §5j, ROADMAP item 3): produce a
# results/bench/BENCH_<date>.json, validate it against the nufft-bench/v1
# schema, and compare against the latest prior trajectory point.
# Advisory by default; BENCH=strict fails on >15% regressions AND when
# no prior report exists (a missing prior means the tracked trajectory
# is broken, not legitimately starting over).
if [[ "${BENCH:-0}" != "0" ]]; then
  echo "== BENCH=${BENCH} bench-smoke trajectory point"
  if [[ "${BENCH}" == "strict" ]]; then
    BENCH_STRICT=1 cargo bench -q -p bench --bench bench_smoke
  else
    cargo bench -q -p bench --bench bench_smoke
  fi
else
  echo "== bench-smoke skipped (BENCH=1 to record a trajectory point, BENCH=strict to gate)"
fi

echo "All checks passed."
