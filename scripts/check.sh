#!/usr/bin/env bash
# Pre-merge gate: formatting, lints (deny warnings), and the test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "== cargo test -q --test fault_injection (chaos suite)"
cargo test -q --test fault_injection

if [[ "${CHAOS:-0}" != "0" ]]; then
  echo "== CHAOS=1 randomized probabilistic-fault sweep"
  CHAOS=1 cargo test -q --test fault_injection chaos_randomized -- --nocapture
fi

echo "All checks passed."
