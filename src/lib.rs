//! Workspace umbrella crate: re-exports the main libraries of the
//! cuFINUFFT reproduction so examples and integration tests can use a
//! single dependency.
pub use cufinufft;
pub use finufft_cpu;
pub use gpu_fft;
pub use gpu_sim;
pub use mtip;
pub use nufft_baselines;
pub use nufft_common;
pub use nufft_fft;
pub use nufft_kernels;
