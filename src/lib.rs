//! Workspace umbrella crate: re-exports the main libraries of the
//! cuFINUFFT reproduction so examples and integration tests can use a
//! single dependency.

#![forbid(unsafe_code)]
pub use cufinufft;
pub use finufft_cpu;
pub use gpu_fft;
pub use gpu_sim;
pub use mtip;
pub use nufft_baselines;
pub use nufft_common;
pub use nufft_fft;
pub use nufft_kernels;
pub use nufft_trace;

use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, TransformType};
use nufft_trace::{Trace, TraceReport};

/// Run one traced 3D type-1 SM-method transform on a fresh simulated
/// V100 and return the trace report. Shared by the `device_trace`
/// example and the workspace acceptance test so both see the same
/// workload (`N = n^3` modes, `M = 2 n^3` points drawn from `dist`).
pub fn traced_type1_3d(n: usize, dist: PointDist, seed: u64) -> TraceReport {
    let device = gpu_sim::Device::v100();
    let trace = Trace::new();
    let _on = trace.activate();
    let mut plan = cufinufft::Plan::<f32>::builder(TransformType::Type1, &[n, n, n])
        .eps(1e-5)
        .method(cufinufft::Method::Sm)
        .tracing(&trace)
        .build(&device)
        .unwrap();
    let m = 2 * n * n * n;
    let pts = gen_points::<f32>(dist, 3, m, plan.fine_grid_shape(), seed);
    let cs = gen_strengths::<f32>(m, seed + 1);
    plan.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f32>::ZERO; n * n * n];
    plan.execute(&cs, &mut out).unwrap();
    plan.trace_report().expect("plan was built with tracing")
}
