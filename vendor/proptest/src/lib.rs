//! Minimal `proptest` stand-in for offline builds.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: range/tuple/`prop_map`/`collection::vec` strategies, the
//! `proptest!` macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - inputs are drawn from a deterministic xoshiro256** stream seeded
//!   from the test name, so runs are reproducible without a persistence
//!   file;
//! - failing cases are reported with their case index and generated
//!   values are NOT shrunk (the failure message carries the assertion's
//!   own diagnostics instead).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// `vec(element_strategy, size_range)` — sizes accept `a..b` and
    /// `a..=b` like upstream.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The test-defining macro. Accepts an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(pat in strategy, ...)
/// { body }` items (with any outer attributes, e.g. `#[test]` and doc
/// comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __rejects: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __rng,
                    );
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __case += 1; }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        __rejects += 1;
                        if __rejects > __config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), __rejects
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..200 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
            let v = crate::collection::vec(0u64..10, 2..6).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|&e| e < 10));
            let w = crate::collection::vec(0.0f64..1.0, 4..=4).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let s = (0.0f64..1.0, 1usize..5).prop_map(|(f, n)| f * n as f64);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..5.0).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires config, strategies, and assertions together.
        #[test]
        fn macro_end_to_end(a in 1usize..50, b in 1usize..50) {
            prop_assume!(a != b);
            prop_assert!(a + b >= 2, "sum {}", a + b);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        /// Default config path (no inner attribute).
        #[test]
        fn macro_default_config(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    // the macro expands to a nested #[test] fn, which is fine here: the
    // outer test invokes it directly
    #[allow(unnameable_test_items)]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn inner_always_fails(x in 0usize..5) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner_always_fails();
    }
}
