//! Config, rng, and failure plumbing for the `proptest!` macro.

/// Per-block configuration. Only `cases` is honoured; the rest exist
/// so upstream-style construction keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// How a single generated case ended, when not `Ok`.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this input out; try another.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic xoshiro256** stream, seeded from the test's name via
/// FNV-1a so each property gets an independent but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
