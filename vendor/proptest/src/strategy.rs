//! Value-generation strategies.
//!
//! Unlike real proptest there is no shrink tree: a strategy is just a
//! deterministic map from rng state to a value, which keeps the trait
//! object-safe-free and tiny while supporting the same composition
//! surface (`prop_map`, tuples, ranges, `collection::vec`).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty int strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty int strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Length range for `collection::vec`, converted from `a..b` / `a..=b`
/// / a bare `usize`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub lo: usize,
    /// inclusive upper bound
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u128;
        let n = self.size.lo + ((rng.next_u64() as u128 * span) >> 64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
