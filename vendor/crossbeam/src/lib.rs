//! Minimal `crossbeam` stand-in for offline builds, backed by
//! `std::thread::scope` and `std::sync::mpsc`.
//!
//! Covers exactly the slice the workspace uses: `crossbeam::scope` with
//! `Scope::spawn(|_| ...)` / `ScopedJoinHandle::join`, and
//! `crossbeam::channel::bounded` with cloneable senders and a blocking
//! receiver iterator. Semantic difference from real crossbeam: a panic
//! in an unjoined worker propagates as a panic out of `scope` (via
//! `std::thread::scope`) instead of surfacing as `Err`; every call site
//! in this workspace immediately `.expect()`s the result, so the
//! observable behaviour — a panic with a message — is the same.

#![forbid(unsafe_code)]

pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError};

    /// Cloneable bounded sender (std's `SyncSender` re-badged).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// A bounded MPSC channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

/// A scope token mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker; the closure receives the scope (crossbeam passes
    /// `&Scope` so nested spawns are possible — all call sites here
    /// ignore it as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let token = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&token)),
        }
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before
/// this returns. Always `Ok` — worker panics propagate as panics.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawn_join() {
        let total = AtomicUsize::new(0);
        let got = crate::scope(|s| {
            let hs: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 2)).collect();
            for h in hs {
                total.fetch_add(h.join().unwrap(), Ordering::Relaxed);
            }
            total.load(Ordering::Relaxed)
        })
        .unwrap();
        assert_eq!(got, 12);
    }

    #[test]
    fn bounded_channel_fan_in() {
        let (tx, rx) = crate::channel::bounded::<usize>(2);
        crate::scope(|s| {
            for w in 0..3 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..5 {
                        tx.send(w * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            assert_eq!(rx.iter().count(), 15);
        })
        .unwrap();
    }
}
