//! Minimal `criterion` stand-in for offline builds.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros with a simple
//! calibrated-timing loop (no statistics engine, no reports beyond a
//! per-benchmark mean/min line on stdout). Good enough to keep the
//! workspace's micro-benchmarks runnable and their call sites
//! compiling without network access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
const WARMUP_TARGET: Duration = Duration::from_millis(50);

pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: MEASURE_TARGET,
        }
    }
}

pub struct Bencher {
    samples: Vec<f64>,
    measure: Duration,
}

impl Bencher {
    /// Run the routine repeatedly: a short warm-up to pick an iteration
    /// count, then timed batches until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and per-iteration estimate
        let warm_start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if warm_start.elapsed() >= WARMUP_TARGET {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        while start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.3} ns", secs * 1e9)
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            measure: self.measure,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:<32} (no samples)");
        } else {
            let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
            let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "{id:<32} time: mean {:>12}  min {:>12}  ({} samples)",
                fmt_time(mean),
                fmt_time(min),
                b.samples.len()
            );
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    criterion_group!(shim_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.measure = Duration::from_millis(1);
        c.bench_function("macro_smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_invokes_targets() {
        shim_group();
    }
}
