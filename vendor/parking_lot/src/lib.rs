//! Minimal `parking_lot` stand-in backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API slice it actually uses: a `Mutex`
//! whose `lock()` returns a guard directly (no poison `Result`).
//! Poisoned locks are recovered transparently, matching parking_lot's
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(7u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
