//! Named generators. `StdRng` is xoshiro256** (Blackman & Vigna),
//! state-seeded with splitmix64 as its authors recommend.

use crate::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
