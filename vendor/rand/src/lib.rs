//! Minimal `rand` 0.9 stand-in for offline builds.
//!
//! The workspace only uses `StdRng::seed_from_u64` plus
//! `Rng::random_range` on primitive ranges, so that is all this crate
//! provides. `StdRng` here is xoshiro256** seeded through splitmix64 —
//! a high-quality, deterministic generator (NOT the upstream StdRng
//! stream, which is fine: every call site seeds explicitly and only
//! relies on reproducibility within this workspace).

#![forbid(unsafe_code)]

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleRange {
    type Output;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Uniform f64 in [0, 1) from the top 53 bits of a word.
#[inline]
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // widening-multiply range reduction (Lemire); the bias is
                // < 2^-64 and irrelevant for simulation workloads
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u32, u64, i32, i64);

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = r.random_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = r.random_range(-4i64..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
