//! Cross-crate integration: all four libraries computing the same
//! transform must agree to within their respective accuracies, across
//! types, dimensions and distributions.

use cufinufft::{GpuOpts, Method};
use gpu_sim::Device;
use nufft_common::metrics::rel_l2;
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, Points, Shape, TransformType};

fn pts64(pts: &Points<f64>) -> Points<f64> {
    pts.clone()
}

struct Problem {
    modes: Vec<usize>,
    pts: Points<f64>,
    strengths: Vec<Complex<f64>>,
    coeffs: Vec<Complex<f64>>,
}

fn problem(modes: &[usize], m: usize, dist: PointDist, seed: u64) -> Problem {
    let shape = Shape::from_slice(modes);
    let fine = shape.map(|_, n| 2 * n);
    Problem {
        modes: modes.to_vec(),
        pts: gen_points(dist, modes.len(), m, fine, seed),
        strengths: gen_strengths(m, seed + 1),
        coeffs: gen_coeffs(shape.total(), seed + 2),
    }
}

fn cpu_reference(p: &Problem, ttype: TransformType) -> Vec<Complex<f64>> {
    let iflag = if ttype == TransformType::Type1 { -1 } else { 1 };
    let mut plan =
        finufft_cpu::Plan::<f64>::new(ttype, &p.modes, iflag, 1e-12, finufft_cpu::Opts::default())
            .unwrap();
    plan.set_pts(pts64(&p.pts)).unwrap();
    let n: usize = p.modes.iter().product();
    let (input, out_len) = match ttype {
        TransformType::Type1 => (&p.strengths, n),
        TransformType::Type2 => (&p.coeffs, p.pts.len()),
    };
    let mut out = vec![Complex::ZERO; out_len];
    plan.execute(input, &mut out).unwrap();
    out
}

#[test]
fn all_gpu_libraries_agree_with_cpu_2d_type1() {
    let p = problem(&[28, 24], 600, PointDist::Rand, 1);
    let truth = cpu_reference(&p, TransformType::Type1);
    let dev = Device::v100();
    // cuFINUFFT at 1e-10: near-reference agreement
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        let mut opts = GpuOpts::default();
        opts.method = method;
        let mut plan =
            cufinufft::Plan::<f64>::new(TransformType::Type1, &p.modes, -1, 1e-10, opts, &dev)
                .unwrap();
        plan.set_pts(&p.pts).unwrap();
        let mut out = vec![Complex::ZERO; truth.len()];
        plan.execute(&p.strengths, &mut out).unwrap();
        assert!(rel_l2(&out, &truth) < 1e-9, "{method:?}");
    }
    // CUNFFT at a moderate tolerance
    let mut cn =
        nufft_baselines::CunfftPlan::<f64>::new(TransformType::Type1, &p.modes, -1, 1e-6, &dev)
            .unwrap();
    cn.set_pts(&p.pts).unwrap();
    let mut out = vec![Complex::ZERO; truth.len()];
    cn.execute(&p.strengths, &mut out).unwrap();
    assert!(rel_l2(&out, &truth) < 1e-4);
    // gpuNUFFT within its accuracy floor
    let mut gp =
        nufft_baselines::GpunufftPlan::<f64>::new(TransformType::Type1, &p.modes, -1, 1e-3, &dev)
            .unwrap();
    gp.set_pts(&p.pts).unwrap();
    let mut out = vec![Complex::ZERO; truth.len()];
    gp.execute(&p.strengths, &mut out).unwrap();
    assert!(rel_l2(&out, &truth) < 3e-2);
}

#[test]
fn all_gpu_libraries_agree_with_cpu_3d_type2() {
    let p = problem(&[10, 12, 8], 350, PointDist::Rand, 2);
    let truth = cpu_reference(&p, TransformType::Type2);
    let dev = Device::v100();
    let mut plan = cufinufft::Plan::<f64>::new(
        TransformType::Type2,
        &p.modes,
        1,
        1e-10,
        GpuOpts::default(),
        &dev,
    )
    .unwrap();
    plan.set_pts(&p.pts).unwrap();
    let mut out = vec![Complex::ZERO; p.pts.len()];
    plan.execute(&p.coeffs, &mut out).unwrap();
    assert!(rel_l2(&out, &truth) < 1e-9);
    let mut cn =
        nufft_baselines::CunfftPlan::<f64>::new(TransformType::Type2, &p.modes, 1, 1e-6, &dev)
            .unwrap();
    cn.set_pts(&p.pts).unwrap();
    let mut out = vec![Complex::ZERO; p.pts.len()];
    cn.execute(&p.coeffs, &mut out).unwrap();
    assert!(rel_l2(&out, &truth) < 1e-4);
    let mut gp =
        nufft_baselines::GpunufftPlan::<f64>::new(TransformType::Type2, &p.modes, 1, 1e-3, &dev)
            .unwrap();
    gp.set_pts(&p.pts).unwrap();
    let mut out = vec![Complex::ZERO; p.pts.len()];
    gp.execute(&p.coeffs, &mut out).unwrap();
    assert!(rel_l2(&out, &truth) < 3e-2);
}

#[test]
fn clustered_inputs_agree_across_libraries() {
    let p = problem(&[32, 32], 800, PointDist::Cluster, 3);
    let truth = cpu_reference(&p, TransformType::Type1);
    let dev = Device::v100();
    let mut plan = cufinufft::Plan::<f64>::new(
        TransformType::Type1,
        &p.modes,
        -1,
        1e-11,
        GpuOpts::default(),
        &dev,
    )
    .unwrap();
    plan.set_pts(&p.pts).unwrap();
    let mut out = vec![Complex::ZERO; truth.len()];
    plan.execute(&p.strengths, &mut out).unwrap();
    assert!(rel_l2(&out, &truth) < 1e-9);
}

#[test]
fn f32_and_f64_pipelines_consistent() {
    // the f32 pipeline must agree with f64 up to single round-off
    let modes = [20usize, 20];
    let shape = Shape::from_slice(&modes);
    let fine = shape.map(|_, n| 2 * n);
    let pts32: Points<f32> = gen_points(PointDist::Rand, 2, 300, fine, 5);
    let pts: Points<f64> = Points {
        coords: [
            pts32.coords[0].iter().map(|&v| v as f64).collect(),
            pts32.coords[1].iter().map(|&v| v as f64).collect(),
            Vec::new(),
        ],
        dim: 2,
    };
    let cs32 = gen_strengths::<f32>(300, 6);
    let cs: Vec<Complex<f64>> = cs32.iter().map(|z| z.cast()).collect();
    let dev = Device::v100();
    let mut p32 = cufinufft::Plan::<f32>::new(
        TransformType::Type1,
        &modes,
        -1,
        1e-6,
        GpuOpts::default(),
        &dev,
    )
    .unwrap();
    let mut p64 = cufinufft::Plan::<f64>::new(
        TransformType::Type1,
        &modes,
        -1,
        1e-6,
        GpuOpts::default(),
        &dev,
    )
    .unwrap();
    p32.set_pts(&pts32).unwrap();
    p64.set_pts(&pts).unwrap();
    let mut o32 = vec![Complex::<f32>::ZERO; shape.total()];
    let mut o64 = vec![Complex::<f64>::ZERO; shape.total()];
    p32.execute(&cs32, &mut o32).unwrap();
    p64.execute(&cs, &mut o64).unwrap();
    assert!(rel_l2(&o32, &o64) < 5e-5);
}

#[test]
fn umbrella_crate_reexports_work() {
    // the workspace umbrella crate exposes everything examples need
    use cufinufft_repro::{cufinufft as cf, gpu_sim as gs, nufft_common as nc};
    let dev = gs::Device::v100();
    let plan = cf::Plan::<f32>::new(
        nc::TransformType::Type1,
        &[16, 16],
        -1,
        1e-4,
        cf::GpuOpts::default(),
        &dev,
    );
    assert!(plan.is_ok());
}
