//! Cross-crate integration: all four libraries computing the same
//! transform must agree to within their respective accuracies, across
//! types, dimensions and distributions. Every backend is driven through
//! the shared [`NufftPlan`] trait so the lifecycle (set points, execute
//! one or many vectors, read timings) is exercised uniformly.

use cufinufft::{GpuOpts, Method};
use gpu_sim::Device;
use nufft_common::metrics::rel_l2;
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, NufftPlan, Points, Shape, TransformType};

struct Problem {
    modes: Vec<usize>,
    pts: Points<f64>,
    strengths: Vec<Complex<f64>>,
    coeffs: Vec<Complex<f64>>,
}

fn problem(modes: &[usize], m: usize, dist: PointDist, seed: u64) -> Problem {
    let shape = Shape::from_slice(modes);
    let fine = shape.map(|_, n| 2 * n);
    Problem {
        modes: modes.to_vec(),
        pts: gen_points(dist, modes.len(), m, fine, seed),
        strengths: gen_strengths(m, seed + 1),
        coeffs: gen_coeffs(shape.total(), seed + 2),
    }
}

/// Drive any backend through the shared trait: bind points, execute one
/// transform, sanity-check the timing accessors.
fn run_via_trait(plan: &mut dyn NufftPlan<f64>, p: &Problem) -> Vec<Complex<f64>> {
    plan.set_points(&p.pts).unwrap();
    let input = match plan.transform_type() {
        TransformType::Type1 => &p.strengths,
        TransformType::Type2 => &p.coeffs,
    };
    let mut out = vec![Complex::ZERO; plan.output_len()];
    plan.execute(input, &mut out).unwrap();
    assert!(
        plan.exec_time() > 0.0 && plan.total_time() >= plan.exec_time(),
        "{} reported non-monotone timings",
        plan.backend_name()
    );
    out
}

fn cpu_reference(p: &Problem, ttype: TransformType) -> Vec<Complex<f64>> {
    let iflag = if ttype == TransformType::Type1 { -1 } else { 1 };
    let mut plan =
        finufft_cpu::Plan::<f64>::new(ttype, &p.modes, iflag, 1e-12, finufft_cpu::Opts::default())
            .unwrap();
    run_via_trait(&mut plan, p)
}

fn gpu_plan(
    p: &Problem,
    ttype: TransformType,
    eps: f64,
    opts: GpuOpts,
    dev: &Device,
) -> cufinufft::Plan<f64> {
    cufinufft::Plan::<f64>::builder(ttype, &p.modes)
        .eps(eps)
        .opts(opts)
        .build(dev)
        .unwrap()
}

#[test]
fn all_gpu_libraries_agree_with_cpu_2d_type1() {
    let p = problem(&[28, 24], 600, PointDist::Rand, 1);
    let truth = cpu_reference(&p, TransformType::Type1);
    let dev = Device::v100();
    // cuFINUFFT at 1e-10: near-reference agreement
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        let opts = GpuOpts {
            method,
            ..Default::default()
        };
        let mut plan = gpu_plan(&p, TransformType::Type1, 1e-10, opts, &dev);
        let out = run_via_trait(&mut plan, &p);
        assert!(rel_l2(&out, &truth) < 1e-9, "{method:?}");
    }
    // CUNFFT at a moderate tolerance
    let mut cn =
        nufft_baselines::CunfftPlan::<f64>::new(TransformType::Type1, &p.modes, -1, 1e-6, &dev)
            .unwrap();
    let out = run_via_trait(&mut cn, &p);
    assert!(rel_l2(&out, &truth) < 1e-4);
    // gpuNUFFT within its accuracy floor
    let mut gp =
        nufft_baselines::GpunufftPlan::<f64>::new(TransformType::Type1, &p.modes, -1, 1e-3, &dev)
            .unwrap();
    let out = run_via_trait(&mut gp, &p);
    assert!(rel_l2(&out, &truth) < 3e-2);
}

#[test]
fn all_gpu_libraries_agree_with_cpu_3d_type2() {
    let p = problem(&[10, 12, 8], 350, PointDist::Rand, 2);
    let truth = cpu_reference(&p, TransformType::Type2);
    let dev = Device::v100();
    let mut plan = gpu_plan(&p, TransformType::Type2, 1e-10, GpuOpts::default(), &dev);
    let out = run_via_trait(&mut plan, &p);
    assert!(rel_l2(&out, &truth) < 1e-9);
    let mut cn =
        nufft_baselines::CunfftPlan::<f64>::new(TransformType::Type2, &p.modes, 1, 1e-6, &dev)
            .unwrap();
    let out = run_via_trait(&mut cn, &p);
    assert!(rel_l2(&out, &truth) < 1e-4);
    let mut gp =
        nufft_baselines::GpunufftPlan::<f64>::new(TransformType::Type2, &p.modes, 1, 1e-3, &dev)
            .unwrap();
    let out = run_via_trait(&mut gp, &p);
    assert!(rel_l2(&out, &truth) < 3e-2);
}

#[test]
fn clustered_inputs_agree_across_libraries() {
    let p = problem(&[32, 32], 800, PointDist::Cluster, 3);
    let truth = cpu_reference(&p, TransformType::Type1);
    let dev = Device::v100();
    let mut plan = gpu_plan(&p, TransformType::Type1, 1e-11, GpuOpts::default(), &dev);
    let out = run_via_trait(&mut plan, &p);
    assert!(rel_l2(&out, &truth) < 1e-9);
}

/// Every backend's `execute_many` — native batching on cuFINUFFT and
/// the CPU library, the trait's default loop on the baselines — must
/// stack B independent transforms exactly like B sequential executes.
#[test]
fn trait_execute_many_consistent_on_every_backend() {
    let p = problem(&[18, 14], 400, PointDist::Rand, 11);
    let b = 3;
    let batch: Vec<Complex<f64>> = (0..b)
        .flat_map(|v| gen_strengths::<f64>(400, 20 + v as u64))
        .collect();
    let dev = Device::v100();
    let mut backends: Vec<Box<dyn NufftPlan<f64>>> = vec![
        Box::new(gpu_plan(
            &p,
            TransformType::Type1,
            1e-9,
            GpuOpts::default(),
            &dev,
        )),
        Box::new(
            finufft_cpu::Plan::<f64>::new(
                TransformType::Type1,
                &p.modes,
                -1,
                1e-9,
                finufft_cpu::Opts::default(),
            )
            .unwrap(),
        ),
        Box::new(
            nufft_baselines::CunfftPlan::<f64>::new(TransformType::Type1, &p.modes, -1, 1e-6, &dev)
                .unwrap(),
        ),
        Box::new(
            nufft_baselines::GpunufftPlan::<f64>::new(
                TransformType::Type1,
                &p.modes,
                -1,
                1e-3,
                &dev,
            )
            .unwrap(),
        ),
    ];
    let n: usize = p.modes.iter().product();
    for plan in &mut backends {
        plan.set_points(&p.pts).unwrap();
        // sequential reference on this same backend
        let mut seq = vec![Complex::ZERO; n * b];
        for v in 0..b {
            let (cs, out) = (&batch[v * 400..(v + 1) * 400], &mut seq[v * n..(v + 1) * n]);
            plan.execute(cs, out).unwrap();
        }
        let mut many = vec![Complex::ZERO; n * b];
        plan.execute_many(&batch, &mut many).unwrap();
        for (i, (a, e)) in many.iter().zip(seq.iter()).enumerate() {
            assert_eq!(a.re, e.re, "{} re at {i}", plan.backend_name());
            assert_eq!(a.im, e.im, "{} im at {i}", plan.backend_name());
        }
    }
}

#[test]
fn f32_and_f64_pipelines_consistent() {
    // the f32 pipeline must agree with f64 up to single round-off
    let modes = [20usize, 20];
    let shape = Shape::from_slice(&modes);
    let fine = shape.map(|_, n| 2 * n);
    let pts32: Points<f32> = gen_points(PointDist::Rand, 2, 300, fine, 5);
    let pts: Points<f64> = Points {
        coords: [
            pts32.coords[0].iter().map(|&v| v as f64).collect(),
            pts32.coords[1].iter().map(|&v| v as f64).collect(),
            Vec::new(),
        ],
        dim: 2,
    };
    let cs32 = gen_strengths::<f32>(300, 6);
    let cs: Vec<Complex<f64>> = cs32.iter().map(|z| z.cast()).collect();
    let dev = Device::v100();
    let mut p32 = cufinufft::Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-6)
        .build(&dev)
        .unwrap();
    let mut p64 = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes)
        .eps(1e-6)
        .build(&dev)
        .unwrap();
    p32.set_pts(&pts32).unwrap();
    p64.set_pts(&pts).unwrap();
    let mut o32 = vec![Complex::<f32>::ZERO; shape.total()];
    let mut o64 = vec![Complex::<f64>::ZERO; shape.total()];
    p32.execute(&cs32, &mut o32).unwrap();
    p64.execute(&cs, &mut o64).unwrap();
    assert!(rel_l2(&o32, &o64) < 5e-5);
}

#[test]
fn umbrella_crate_reexports_work() {
    // the workspace umbrella crate exposes everything examples need
    use cufinufft_repro::{cufinufft as cf, gpu_sim as gs, nufft_common as nc};
    let dev = gs::Device::v100();
    let plan = cf::Plan::<f32>::builder(nc::TransformType::Type1, &[16, 16])
        .eps(1e-4)
        .build(&dev);
    assert!(plan.is_ok());
}
