//! Deconvolution parity regression (ISSUE 4 satellite): the even-size
//! Nyquist mode (`k = -N/2`, output index `j = 0`) and odd/even
//! mode-index symmetry in 2D/3D.
//!
//! For even `N` the ascending-frequency mode range `-N/2 .. N/2-1` is
//! asymmetric — the Nyquist mode `-N/2` has no positive partner — while
//! odd `N` is symmetric. An off-by-one in `mode_index` /
//! `freq_to_bin` or a correction factor indexed with the wrong parity
//! shows up exactly at these modes, so each test drives a *single* pure
//! mode through type 2 and back through type 1 and checks both legs
//! against the direct NUDFT oracle.

use cufinufft::opts::{Method, ModeOrder};
use cufinufft::plan::Plan;
use gpu_sim::Device;
use nufft_common::complex::Complex;
use nufft_common::metrics::rel_l2;
use nufft_common::reference::{type1_direct, type2_direct};
use nufft_common::shape::Shape;
use nufft_common::workload::{gen_points, PointDist};
use nufft_common::TransformType;
use nufft_conformance::envelope;

/// Drive mode index `j` (per axis) through type2 then type1 and check
/// both legs against the oracle.
fn single_mode_roundtrip(dim: usize, n: usize, j: usize, modeord: ModeOrder) {
    let eps = 1e-12;
    let dev = Device::v100();
    let modes_v = vec![n; dim];
    let modes = Shape::from_slice(&modes_v);
    let mut f = vec![Complex::<f64>::ZERO; modes.total()];
    // spike at (j, j[, j]) in the *user's* mode order
    let idx = match dim {
        2 => j + n * j,
        _ => j + n * (j + n * j),
    };
    f[idx] = Complex::new(1.0, 0.0);
    let pts = gen_points::<f64>(PointDist::Rand, dim, 150, modes, 5);

    let mut t2 = Plan::<f64>::builder(TransformType::Type2, &modes_v)
        .eps(eps)
        .iflag(1)
        .modeord(modeord)
        .method(Method::GmSort)
        .build(&dev)
        .unwrap();
    t2.set_pts(&pts).unwrap();
    let mut cvals = vec![Complex::<f64>::ZERO; pts.len()];
    t2.execute(&f, &mut cvals).unwrap();

    // oracle speaks ascending-frequency (Centered) order: translate
    let f_centered = match modeord {
        ModeOrder::Centered => f.clone(),
        ModeOrder::Fft => {
            let mut g = vec![Complex::<f64>::ZERO; modes.total()];
            // FFT order stores frequency k at index k mod n per axis;
            // walk every centered index and pull from the FFT position
            let to_fft = |k: i64, n: usize| -> usize { k.rem_euclid(n as i64) as usize };
            let n1 = modes.n[0];
            let n2 = modes.n[1];
            let n3 = modes.n[2];
            let start = |n: usize| -(n as i64 / 2);
            let mut idx = 0usize;
            for j3 in 0..n3 {
                for j2 in 0..n2 {
                    for j1 in 0..n1 {
                        let k1 = start(n1) + j1 as i64;
                        let k2 = start(n2) + j2 as i64;
                        let k3 = start(n3) + j3 as i64;
                        let src = to_fft(k1, n1) + n1 * (to_fft(k2, n2) + n2 * to_fft(k3, n3));
                        g[idx] = f[src];
                        idx += 1;
                    }
                }
            }
            g
        }
    };
    let pts64 = pts.clone();
    let want2 = type2_direct(&pts64, &f_centered, modes, 1);
    let e2 = rel_l2(&cvals, &want2);
    let env = envelope(eps, true);
    assert!(
        e2 <= env,
        "type2 single-mode {dim}D n={n} j={j} {modeord:?}: rel_l2 {e2:.3e} > {env:.3e}"
    );

    let mut t1 = Plan::<f64>::builder(TransformType::Type1, &modes_v)
        .eps(eps)
        .iflag(-1)
        .modeord(modeord)
        .method(Method::GmSort)
        .build(&dev)
        .unwrap();
    t1.set_pts(&pts).unwrap();
    let mut fk = vec![Complex::<f64>::ZERO; modes.total()];
    t1.execute(&cvals, &mut fk).unwrap();
    let want1 = type1_direct(&pts64, &cvals, modes, -1);
    // translate our output to centered order for the oracle comparison
    let fk_centered = match modeord {
        ModeOrder::Centered => fk,
        ModeOrder::Fft => {
            let mut g = vec![Complex::<f64>::ZERO; modes.total()];
            let to_fft = |k: i64, n: usize| -> usize { k.rem_euclid(n as i64) as usize };
            let n1 = modes.n[0];
            let n2 = modes.n[1];
            let n3 = modes.n[2];
            let start = |n: usize| -(n as i64 / 2);
            let mut idx = 0usize;
            for j3 in 0..n3 {
                for j2 in 0..n2 {
                    for j1 in 0..n1 {
                        let k1 = start(n1) + j1 as i64;
                        let k2 = start(n2) + j2 as i64;
                        let k3 = start(n3) + j3 as i64;
                        let src = to_fft(k1, n1) + n1 * (to_fft(k2, n2) + n2 * to_fft(k3, n3));
                        g[idx] = fk[src];
                        idx += 1;
                    }
                }
            }
            g
        }
    };
    let e1 = rel_l2(&fk_centered, &want1);
    assert!(
        e1 <= env,
        "type1-after-type2 {dim}D n={n} j={j} {modeord:?}: rel_l2 {e1:.3e} > {env:.3e}"
    );
}

/// Even size: index 0 is the unpaired Nyquist mode `k = -N/2`.
#[test]
fn even_size_nyquist_and_edges_2d() {
    let n = 16;
    for j in [0usize, 1, n / 2, n - 1] {
        single_mode_roundtrip(2, n, j, ModeOrder::Centered);
    }
}

/// Odd size: symmetric range `-(N-1)/2 .. (N-1)/2`, no Nyquist mode.
#[test]
fn odd_size_edges_2d() {
    let n = 15;
    for j in [0usize, n / 2, n - 1] {
        single_mode_roundtrip(2, n, j, ModeOrder::Centered);
    }
}

#[test]
fn even_and_odd_sizes_3d() {
    for n in [8usize, 9] {
        for j in [0usize, n - 1] {
            single_mode_roundtrip(3, n, j, ModeOrder::Centered);
        }
    }
}

/// The same parity checks in FFT mode order, where the Nyquist mode of
/// an even axis sits at index N/2 instead of 0.
#[test]
fn fft_mode_order_parity() {
    for n in [16usize, 15] {
        for j in [0usize, n / 2, n - 1] {
            single_mode_roundtrip(2, n, j, ModeOrder::Fft);
        }
    }
}
