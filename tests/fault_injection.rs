//! Chaos suite: every fault class the simulator can inject, driven
//! through the public plan APIs. The acceptance bar (ISSUE 3): for each
//! fault class, `Plan::execute` / `Plan::execute_many` and
//! `mtip::reconstruct` either complete with results matching the
//! fault-free run or return a typed error naming the fault — and never
//! panic. Recovery actions must be visible in both the
//! `recovery_report()` and the Chrome trace export.

use cufinufft::{GpuOpts, Method, Plan, RecoveryPolicy, Tuning};
use gpu_sim::{Device, FaultMode, FaultPlan, OpKind};
use nufft_common::metrics::rel_l2;
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, NufftError, Points, TransformType};
use nufft_trace::Trace;

const N: usize = 32;
const M: usize = 600;
const NTRANSF: usize = 4;

/// Single-transform and batched outputs of one lifecycle run.
type Outputs = (Vec<Complex<f32>>, Vec<Complex<f32>>);

/// Full plan lifecycle (build, set_pts, execute, execute_many) on the
/// given device; returns the single-transform and batched outputs.
fn lifecycle(
    dev: &Device,
    policy: RecoveryPolicy,
    trace: Option<&Trace>,
) -> Result<Outputs, NufftError> {
    let mut b = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .ntransf(NTRANSF)
        .recovery(policy);
    if let Some(t) = trace {
        b = b.tracing(t);
    }
    let mut plan = b.build(dev)?;
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 7);
    plan.set_pts(&pts)?;
    let c = gen_strengths::<f32>(M, 8);
    let mut f = vec![Complex::<f32>::ZERO; N * N];
    plan.execute(&c, &mut f)?;
    let batch = gen_strengths::<f32>(M * NTRANSF, 9);
    let mut out = vec![Complex::<f32>::ZERO; N * N * NTRANSF];
    plan.execute_many(&batch, &mut out)?;
    Ok((f, out))
}

fn baseline() -> Outputs {
    lifecycle(&Device::v100(), RecoveryPolicy::none(), None).expect("fault-free run")
}

fn assert_matches_baseline(got: &Outputs) {
    let want = baseline();
    assert!(
        rel_l2(&got.0, &want.0) < 1e-12,
        "single-transform result diverged from fault-free run"
    );
    assert!(
        rel_l2(&got.1, &want.1) < 1e-12,
        "batched result diverged from fault-free run"
    );
}

// ---------------------------------------------------------------------
// transient faults: bounded retry must absorb them bit-exactly
// ---------------------------------------------------------------------

#[test]
fn transient_memcpy_fault_is_retried_and_result_is_exact() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(1).fail_memcpy("htod", FaultMode::Once));
    let got = lifecycle(&dev, RecoveryPolicy::default(), None).expect("retry should recover");
    assert_matches_baseline(&got);
    assert_eq!(dev.faults_injected(), 1);
}

#[test]
fn transient_kernel_fault_is_retried_and_result_is_exact() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(2).fail_kernel("spread", FaultMode::Once));
    let got = lifecycle(&dev, RecoveryPolicy::default(), None).expect("retry should recover");
    assert_matches_baseline(&got);
}

#[test]
fn transient_dtoh_fault_is_retried_and_result_is_exact() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(3).fail_memcpy("dtoh", FaultMode::Once));
    let got = lifecycle(&dev, RecoveryPolicy::default(), None).expect("retry should recover");
    assert_matches_baseline(&got);
}

#[test]
fn fail_fast_policy_surfaces_transient_fault_as_typed_error() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(4).fail_memcpy("htod", FaultMode::Once));
    match lifecycle(&dev, RecoveryPolicy::none(), None) {
        Err(NufftError::DeviceFault {
            op,
            attempts,
            persistent,
        }) => {
            assert!(op.contains("h2d") || op.contains("htod"), "op was {op}");
            assert_eq!(attempts, 1);
            assert!(!persistent, "a Once fault must surface as transient");
        }
        other => panic!("expected DeviceFault, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// persistent faults: bounded retry must give up with a typed error
// ---------------------------------------------------------------------

#[test]
fn persistent_kernel_fault_exhausts_retries_into_typed_error() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(5).fail_kernel("spread", FaultMode::Always));
    match lifecycle(&dev, RecoveryPolicy::default(), None) {
        Err(NufftError::DeviceFault { op, persistent, .. }) => {
            assert!(op.contains("spread") || op.contains("exec"), "op was {op}");
            assert!(persistent, "an Always fault must surface as persistent");
        }
        other => panic!("expected DeviceFault, got {other:?}"),
    }
}

#[test]
fn persistent_memcpy_fault_names_the_operation() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(6).fail_memcpy("", FaultMode::Always));
    let err = lifecycle(&dev, RecoveryPolicy::default(), None).unwrap_err();
    assert!(matches!(err, NufftError::DeviceFault { .. }), "{err:?}");
}

// ---------------------------------------------------------------------
// OOM: every distinct allocation call site in the plan lifecycle
// ---------------------------------------------------------------------

/// Count the allocations a fault-free lifecycle performs, so the sweep
/// below provably covers every alloc call site in plan.rs.
fn alloc_count() -> usize {
    let dev = Device::v100();
    lifecycle(&dev, RecoveryPolicy::none(), None).expect("fault-free run");
    dev.timeline()
        .iter()
        .filter(|r| matches!(r.kind, OpKind::Alloc))
        .count()
}

#[test]
fn oom_sweep_over_every_alloc_site_never_panics() {
    let total = alloc_count();
    assert!(total >= 8, "lifecycle should allocate; saw {total}");
    for nth in 1..=(total as u64 + 1) {
        // persistent OOM from allocation `nth` on, no recovery: every
        // call must return Ok or a typed error — never panic
        let dev = Device::v100();
        dev.inject_faults(FaultPlan::new(10 + nth).fail_alloc_nth(nth, FaultMode::Always));
        match lifecycle(&dev, RecoveryPolicy::none(), None) {
            Ok(got) => assert_matches_baseline(&got),
            Err(NufftError::DeviceOom { .. }) | Err(NufftError::DeviceFault { .. }) => {}
            Err(other) => panic!("alloc {nth}: unexpected error class {other:?}"),
        }
    }
}

#[test]
fn transient_oom_sweep_recovers_at_every_alloc_site() {
    let total = alloc_count();
    for nth in 1..=(total as u64) {
        // one-shot OOM at allocation `nth`, default recovery: the retry
        // must absorb it and results must match the fault-free run
        let dev = Device::v100();
        dev.inject_faults(FaultPlan::new(20 + nth).fail_alloc_nth(nth, FaultMode::Once));
        let got = lifecycle(&dev, RecoveryPolicy::default(), None)
            .unwrap_or_else(|e| panic!("alloc {nth}: retry should recover, got {e:?}"));
        assert_matches_baseline(&got);
    }
}

/// Batched run with an explicit `max_batch` chunk size; returns the
/// output and the device's peak memory footprint.
fn batched_run(dev: &Device, max_batch: usize) -> (Vec<Complex<f32>>, usize) {
    const B: usize = 8;
    let opts = GpuOpts {
        max_batch,
        recovery: RecoveryPolicy::default(),
        ..GpuOpts::default()
    };
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .ntransf(B)
        .opts(opts)
        .build(dev)
        .expect("plan build");
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 7);
    plan.set_pts(&pts).unwrap();
    let batch = gen_strengths::<f32>(M * B, 9);
    let mut out = vec![Complex::<f32>::ZERO; N * N * B];
    plan.execute_many(&batch, &mut out).expect("batched exec");
    assert_eq!(plan.recovery_report().chunk_shrinks, 0);
    (out, dev.mem_peak())
}

#[test]
fn capacity_oom_shrinks_batch_chunks_and_completes() {
    // calibrate a cap between the peak footprint of a chunk-4 run and a
    // chunk-8 run: the capped device cannot stage 8 transforms at once
    // but can stage 4, so one halving must absorb the OOM
    let (want, peak8) = batched_run(&Device::v100(), 8);
    let (_, peak4) = batched_run(&Device::v100(), 4);
    assert!(peak4 < peak8, "smaller chunks must use less memory");
    let cap = (peak4 + peak8) / 2;

    const B: usize = 8;
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(30).mem_cap(cap));
    let opts = GpuOpts {
        max_batch: 8,
        recovery: RecoveryPolicy::default(),
        ..GpuOpts::default()
    };
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .ntransf(B)
        .opts(opts)
        .build(&dev)
        .expect("plan should build under the cap");
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 7);
    plan.set_pts(&pts).unwrap();
    let batch = gen_strengths::<f32>(M * B, 9);
    let mut out = vec![Complex::<f32>::ZERO; N * N * B];
    plan.execute_many(&batch, &mut out)
        .expect("chunk shrinking should absorb the capacity cap");
    let rep = plan.recovery_report();
    assert!(
        rep.chunk_shrinks > 0,
        "expected at least one chunk shrink: {rep:?}"
    );
    let final_chunk = rep.final_chunk.expect("shrink records the chunk");
    assert!((1..8).contains(&final_chunk), "final chunk {final_chunk}");
    assert!(rel_l2(&out, &want) < 1e-12, "shrunk run diverged");
}

#[test]
fn capacity_oom_without_shrinking_is_typed_error() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(31).mem_cap(1024));
    let err = lifecycle(&dev, RecoveryPolicy::none(), None).unwrap_err();
    assert!(matches!(err, NufftError::DeviceOom { .. }), "{err:?}");
}

// ---------------------------------------------------------------------
// method fallback
// ---------------------------------------------------------------------

#[test]
fn infeasible_sm_falls_back_to_gm_sort_when_allowed() {
    let dev = Device::v100();
    let opts = GpuOpts {
        method: Method::Sm,
        // far below any subproblem footprint
        tuning: Tuning {
            shared_mem_budget: 64,
            ..Tuning::default()
        },
        recovery: RecoveryPolicy {
            allow_method_fallback: true,
            ..RecoveryPolicy::default()
        },
        ..GpuOpts::default()
    };
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .opts(opts)
        .build(&dev)
        .expect("fallback should keep the plan viable");
    assert_eq!(plan.recovery_report().method_fallbacks, 1);
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 7);
    plan.set_pts(&pts).unwrap();
    let c = gen_strengths::<f32>(M, 8);
    let mut f = vec![Complex::<f32>::ZERO; N * N];
    plan.execute(&c, &mut f).unwrap();

    // must equal an explicit GM-sort run
    let dev2 = Device::v100();
    let mut gm = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .method(Method::GmSort)
        .build(&dev2)
        .unwrap();
    gm.set_pts(&pts).unwrap();
    let mut fg = vec![Complex::<f32>::ZERO; N * N];
    gm.execute(&c, &mut fg).unwrap();
    assert!(rel_l2(&f, &fg) < 1e-12);
}

#[test]
fn infeasible_sm_still_fails_loudly_without_fallback() {
    let dev = Device::v100();
    let opts = GpuOpts {
        method: Method::Sm,
        tuning: Tuning {
            shared_mem_budget: 64,
            ..Tuning::default()
        },
        ..GpuOpts::default()
    };
    match Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .opts(opts)
        .build(&dev)
    {
        Err(NufftError::MethodUnavailable(_)) => {}
        Err(other) => panic!("expected MethodUnavailable, got {other:?}"),
        Ok(_) => panic!("infeasible SM must not build without fallback"),
    }
}

// ---------------------------------------------------------------------
// stalls: schedule stretches, results do not
// ---------------------------------------------------------------------

#[test]
fn stalled_memcpy_succeeds_and_charges_simulated_time() {
    let clean = Device::v100();
    lifecycle(&clean, RecoveryPolicy::none(), None).expect("fault-free run");
    let t_clean = clean.clock();

    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(40).stall_memcpy("htod", 0.25));
    let got = lifecycle(&dev, RecoveryPolicy::none(), None).expect("a stall is not a failure");
    assert_matches_baseline(&got);
    assert!(
        dev.clock() >= t_clean + 0.249,
        "stall should stretch the schedule: {} vs {}",
        dev.clock(),
        t_clean
    );
}

// ---------------------------------------------------------------------
// observability: recovery shows up in the report and the Chrome trace
// ---------------------------------------------------------------------

#[test]
fn recovery_is_visible_in_report_and_chrome_trace() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(50).fail_memcpy("htod", FaultMode::Once));
    let trace = Trace::new();
    let _on = trace.activate();

    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .recovery(RecoveryPolicy::default())
        .tracing(&trace)
        .build(&dev)
        .unwrap();
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 7);
    plan.set_pts(&pts).unwrap();
    let c = gen_strengths::<f32>(M, 8);
    let mut f = vec![Complex::<f32>::ZERO; N * N];
    plan.execute(&c, &mut f).unwrap();

    let rep = plan.recovery_report();
    assert!(rep.retries >= 1, "report should count the retry: {rep:?}");
    assert_eq!(rep.recovered, 1, "{rep:?}");
    assert_eq!(rep.unrecovered, 0, "{rep:?}");
    assert!(
        rep.events.iter().any(|e| e.contains("h2d:pts")),
        "events should name the faulted op: {:?}",
        rep.events
    );

    let report = plan.trace_report().expect("tracing was enabled");
    assert!(
        *report.counters.get("gpu.faults.injected").unwrap_or(&0) >= 1,
        "device should count injected faults: {:?}",
        report.counters
    );
    assert!(
        *report.counters.get("recovery.retries").unwrap_or(&0) >= 1,
        "recovery layer should count retries: {:?}",
        report.counters
    );
    assert!(
        *report.counters.get("recovery.recovered").unwrap_or(&0) >= 1,
        "{:?}",
        report.counters
    );
    let chrome = report.chrome_json();
    assert!(
        chrome.contains("fault:"),
        "fault events should appear in the Chrome export"
    );
}

// ---------------------------------------------------------------------
// type 3 and M-TIP under faults
// ---------------------------------------------------------------------

fn t3_points(dim: usize, n: usize, hw: f64, seed: u64) -> Points<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = [Vec::new(), Vec::new(), Vec::new()];
    for coord in coords.iter_mut().take(dim) {
        *coord = (0..n).map(|_| rng.random_range(-hw..hw)).collect();
    }
    Points { coords, dim }
}

#[test]
fn type3_transient_kernel_fault_recovers() {
    let x = t3_points(2, 150, 2.0, 1);
    let s = t3_points(2, 120, 8.0, 2);
    let cs: Vec<Complex<f64>> = (0..150)
        .map(|j| Complex::new((j as f64).cos(), 0.2))
        .collect();

    let run = |dev: &Device| -> Result<Vec<Complex<f64>>, NufftError> {
        let mut plan = cufinufft::GpuType3Plan::<f64>::new(2, 1, 1e-8, GpuOpts::default(), dev)?;
        plan.set_pts(&x, &s)?;
        let mut out = vec![Complex::ZERO; 120];
        plan.execute(&cs, &mut out)?;
        Ok(out)
    };

    let want = run(&Device::v100()).expect("fault-free type 3");
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(60).fail_kernel("spread", FaultMode::Once));
    let got = run(&dev).expect("type-3 retry should recover");
    assert!(rel_l2(&got, &want) < 1e-12);
}

#[test]
fn type3_rejects_nonfinite_source_and_target_points() {
    let dev = Device::v100();
    let mut plan =
        cufinufft::GpuType3Plan::<f64>::new(2, 1, 1e-8, GpuOpts::default(), &dev).unwrap();

    let mut x = t3_points(2, 40, 2.0, 3);
    let s = t3_points(2, 30, 8.0, 4);
    x.coords[0][5] = f64::NAN;
    match plan.set_pts(&x, &s) {
        Err(NufftError::BadPoint { index: 5, .. }) => {}
        other => panic!("expected BadPoint for source, got {other:?}"),
    }

    let x = t3_points(2, 40, 2.0, 3);
    let mut s = t3_points(2, 30, 8.0, 4);
    s.coords[1][7] = f64::INFINITY;
    match plan.set_pts(&x, &s) {
        Err(NufftError::BadPoint { index: 7, .. }) => {}
        other => panic!("expected BadPoint for target frequency, got {other:?}"),
    }
}

fn tiny_mtip(recovery: RecoveryPolicy) -> mtip::MtipConfig {
    mtip::MtipConfig {
        n_grid: 12,
        n_images: 4,
        n_det: 8,
        eps: 1e-6,
        iterations: 2,
        n_blobs: 3,
        match_orientations: false,
        n_decoys: 0,
        cg_iters: 2,
        oracle_phases: true,
        hio_beta: 0.0,
        tight_support: false,
        shrink_wrap_every: 0,
        shrink_wrap_threshold: 0.1,
        init_truth: false,
        recovery,
        seed: 5,
    }
}

#[test]
fn mtip_survives_transient_midloop_faults() {
    let clean = mtip::reconstruct(&tiny_mtip(RecoveryPolicy::default()), &Device::v100())
        .expect("fault-free reconstruction");

    let dev = Device::v100();
    // one-shot faults landing mid-iteration: an alloc OOM and an htod
    // glitch; bounded retry must absorb both
    dev.inject_faults(
        FaultPlan::new(70)
            .fail_alloc_nth(12, FaultMode::Once)
            .fail_memcpy("htod", FaultMode::Once),
    );
    let res = mtip::reconstruct(&tiny_mtip(RecoveryPolicy::default()), &dev)
        .expect("recovery should absorb transient faults");
    assert_eq!(res.errors.len(), clean.errors.len());
    for (a, b) in res.errors.iter().zip(clean.errors.iter()) {
        assert!((a - b).abs() < 1e-12, "iteration errors diverged");
    }
}

#[test]
fn mtip_returns_typed_error_on_persistent_fault() {
    let dev = Device::v100();
    dev.inject_faults(FaultPlan::new(71).fail_kernel("", FaultMode::Always));
    match mtip::reconstruct(&tiny_mtip(RecoveryPolicy::none()), &dev) {
        Err(NufftError::DeviceFault { .. }) | Err(NufftError::DeviceOom { .. }) => {}
        other => panic!("expected a typed device error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// CHAOS=1: randomized probabilistic sweep (scripts/check.sh opt-in)
// ---------------------------------------------------------------------

/// Randomized fault storms, opt-in via `CHAOS=1` (wired into
/// `scripts/check.sh`). Each seed draws a different mix of probabilistic
/// transient faults — and occasionally a persistent one — against the
/// full plan lifecycle. Transient-only storms must recover bit-exactly;
/// storms with a persistent fault may instead surface a typed device
/// error. No seed may panic or silently corrupt the output.
#[test]
fn chaos_randomized_probabilistic_sweep() {
    if std::env::var("CHAOS").is_err() {
        eprintln!("chaos sweep skipped; run with CHAOS=1 to enable");
        return;
    }
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let want = baseline();
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = FaultPlan::new(seed).fail_memcpy_with_probability(
            "",
            rng.random_range(0.05..0.5),
            FaultMode::Once,
        );
        if rng.random_bool(0.4) {
            faults = faults.fail_alloc_nth(rng.random_range(1u64..16), FaultMode::Once);
        }
        if rng.random_bool(0.4) {
            let kernels = ["spread", "interp", "deconv", "fft"];
            faults = faults.fail_kernel(kernels[rng.random_range(0usize..4)], FaultMode::Once);
        }
        let persistent = rng.random_bool(0.2);
        if persistent {
            faults = faults.fail_memcpy("dtoh", FaultMode::Always);
        }

        let dev = Device::v100();
        dev.inject_faults(faults);
        match lifecycle(&dev, RecoveryPolicy::default(), None) {
            Ok(got) => {
                assert!(
                    rel_l2(&got.0, &want.0) < 1e-12 && rel_l2(&got.1, &want.1) < 1e-12,
                    "seed {seed}: recovered run diverged from fault-free baseline"
                );
            }
            Err(NufftError::DeviceFault { .. }) | Err(NufftError::DeviceOom { .. })
                if persistent => {}
            Err(other) => panic!("seed {seed}: unexpected failure {other:?}"),
        }
    }
}
