//! Cross-crate integration: type-3 transforms (CPU vs GPU vs direct) and
//! the end-to-end M-TIP pipeline.

use gpu_sim::Device;
use nufft_common::metrics::rel_l2;
use nufft_common::{Complex, Points};
use proptest::prelude::*;

fn direct_t3(
    x: &Points<f64>,
    cs: &[Complex<f64>],
    s: &Points<f64>,
    iflag: i32,
) -> Vec<Complex<f64>> {
    (0..s.len())
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &cj) in cs.iter().enumerate().take(x.len()) {
                let mut phase = 0.0;
                for i in 0..x.dim {
                    phase += s.coord(i, k) * x.coord(i, j);
                }
                acc += cj * Complex::cis(iflag as f64 * phase);
            }
            acc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Type 3 meets tolerance for arbitrary source/target scales, and the
    /// CPU and GPU paths agree closely.
    #[test]
    fn type3_tolerance_random_scales(
        xw in 0.05f64..8.0,
        sw in 0.5f64..40.0,
        m in 20usize..80,
        nt in 20usize..80,
        seed in 0u64..50,
    ) {
        // keep the space-bandwidth product tractable for the test
        prop_assume!(xw * sw < 60.0);
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let x = Points::<f64> {
            coords: [(0..m).map(|_| next() * xw).collect(), (0..m).map(|_| next() * xw).collect(), Vec::new()],
            dim: 2,
        };
        let s = Points::<f64> {
            coords: [(0..nt).map(|_| next() * sw).collect(), (0..nt).map(|_| next() * sw).collect(), Vec::new()],
            dim: 2,
        };
        let cs: Vec<Complex<f64>> = (0..m).map(|_| Complex::new(next(), next())).collect();
        let eps = 1e-8;
        let mut cpu = finufft_cpu::Type3Plan::<f64>::new(2, 1, eps).unwrap();
        cpu.set_pts(&x, &s, eps).unwrap();
        let mut out_cpu = vec![Complex::ZERO; nt];
        cpu.execute(&cs, &mut out_cpu).unwrap();
        let want = direct_t3(&x, &cs, &s, 1);
        prop_assert!(rel_l2(&out_cpu, &want) < 1e-6, "cpu err {}", rel_l2(&out_cpu, &want));

        let dev = Device::v100();
        let mut gpu =
            cufinufft::GpuType3Plan::<f64>::new(2, 1, eps, cufinufft::GpuOpts::default(), &dev)
                .unwrap();
        gpu.set_pts(&x, &s).unwrap();
        let mut out_gpu = vec![Complex::ZERO; nt];
        gpu.execute(&cs, &mut out_gpu).unwrap();
        prop_assert!(rel_l2(&out_gpu, &want) < 1e-6, "gpu err {}", rel_l2(&out_gpu, &want));
        prop_assert!(rel_l2(&out_gpu, &out_cpu) < 1e-9);
    }
}

#[test]
fn mtip_pipeline_converges_end_to_end() {
    let cfg = mtip::MtipConfig {
        n_grid: 20,
        n_images: 12,
        n_det: 14,
        eps: 1e-7,
        iterations: 6,
        n_blobs: 4,
        match_orientations: true,
        n_decoys: 2,
        cg_iters: 6,
        oracle_phases: true,
        hio_beta: 0.0,
        tight_support: false,
        shrink_wrap_every: 3,
        shrink_wrap_threshold: 0.05,
        init_truth: false,
        recovery: mtip::RecoveryPolicy::default(),
        seed: 99,
    };
    let dev = Device::v100();
    let res = mtip::reconstruct(&cfg, &dev).unwrap();
    assert!(*res.errors.last().unwrap() < 0.4, "errors {:?}", res.errors);
    assert!(*res.orientation_accuracy.last().unwrap() >= 0.75);
    // resolution: low shells must be recovered
    let fsc = mtip::fourier_shell_correlation(&res.density, &res.truth, cfg.n_grid);
    assert!(fsc[1] > 0.8 && fsc[2] > 0.7, "low-shell FSC {fsc:?}");
    // the whole pipeline ran on the simulated device
    assert!(res.timings.slicing > 0.0 && res.timings.merging > 0.0);
}
