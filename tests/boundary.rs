//! Regression tests for periodic folding of nonuniform points pinned
//! exactly to the domain boundary (±π), the fold seam (0, -ulp, 2π-ulp),
//! and bin boundaries (multiples of the bin size in fine-grid cells).
//!
//! The hazards these guard: `x.rem_euclid(2π)` can round to exactly `2π`
//! for `x` just below zero, which without the fold guard in
//! `nufft_kernels::grid_coord` lands the point at fine-grid coordinate
//! `g = n` — the GM path would then write out of the wrapped range and
//! the SM path would index one cell past its padded bin. Points exactly
//! on bin boundaries must land in exactly one bin (no double-counted
//! weight), and their kernel footprints must wrap correctly at the grid
//! edge. Each test pins every point to such a value and checks the
//! result against the direct NUDFT oracle under the same conformance
//! envelope as randomly placed points — a folding bug shows up as a
//! catastrophic error (the point's whole weight misplaced), not a
//! subtle one.

use cufinufft::opts::Method;
use cufinufft::plan::Plan;
use gpu_sim::Device;
use nufft_common::complex::Complex;
use nufft_common::metrics::rel_l2;
use nufft_common::real::Real;
use nufft_common::reference::{type1_direct, type2_direct};
use nufft_common::shape::Shape;
use nufft_common::workload::{gen_coeffs, gen_strengths, Points};
use nufft_common::TransformType;
use nufft_conformance::envelope;

/// `m` points cycled over values pinned to the domain boundary, the fold
/// seam, and bin boundaries of a fine grid with `fine_n` cells per axis
/// (default bins are 32 fine cells wide in 2D).
fn pinned_points<T: Real>(dim: usize, m: usize, fine_n: usize) -> Points<T> {
    let pi = std::f64::consts::PI;
    let tau = std::f64::consts::TAU;
    let h = tau / fine_n as f64;
    let vals = [
        -pi,                              // domain boundary (folds to fine cell n/2)
        pi,                               // same physical point, approached from above
        0.0,                              // fold seam
        -1e-17,                           // rem_euclid rounds this fold to exactly 2pi
        pi - 1e-15,                       // one ulp inside the boundary
        32.0 * h - pi,                    // exactly on a bin boundary
        64.0 * h - pi,                    // exactly on a bin boundary
        96.0 * h - pi,                    // exactly on a bin boundary
        h * 0.5 - pi,                     // half-cell offset (footprint straddles seam)
        (fine_n as f64) * h - pi - 1e-13, // just below the wrap point
    ];
    let mut coords = [Vec::new(), Vec::new(), Vec::new()];
    for (i, coord) in coords.iter_mut().enumerate().take(dim) {
        // offset the cycle per axis so points are not all on the diagonal
        *coord = (0..m)
            .map(|j| T::from_f64(vals[(j + i * 3) % vals.len()]))
            .collect();
    }
    Points { coords, dim }
}

fn check_type1<T: Real>(dim: usize, modes_n: usize, eps: f64, method: Method) {
    let dev = Device::v100();
    let modes_v = vec![modes_n; dim];
    let mut plan = Plan::<T>::builder(TransformType::Type1, &modes_v)
        .eps(eps)
        .iflag(-1)
        .method(method)
        .build(&dev)
        .unwrap();
    let fine_n = plan.fine_grid_shape().n[0];
    let pts = pinned_points::<T>(dim, 200, fine_n);
    let cs = gen_strengths::<T>(pts.len(), 7);
    plan.set_pts(&pts).unwrap();
    let modes = Shape::from_slice(&modes_v);
    let mut out = vec![Complex::<T>::ZERO; modes.total()];
    plan.execute(&cs, &mut out).unwrap();
    let want = type1_direct(&pts, &cs, modes, -1);
    let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
    let err = rel_l2(&got, &want);
    let env = envelope(eps, T::IS_DOUBLE);
    assert!(
        err <= env,
        "type1 {dim}D {method:?} eps={eps:.0e} boundary-pinned: rel_l2 {err:.3e} > {env:.3e}"
    );
}

fn check_type2<T: Real>(dim: usize, modes_n: usize, eps: f64, method: Method) {
    let dev = Device::v100();
    let modes_v = vec![modes_n; dim];
    let mut plan = Plan::<T>::builder(TransformType::Type2, &modes_v)
        .eps(eps)
        .iflag(1)
        .method(method)
        .build(&dev)
        .unwrap();
    let fine_n = plan.fine_grid_shape().n[0];
    let pts = pinned_points::<T>(dim, 200, fine_n);
    plan.set_pts(&pts).unwrap();
    let modes = Shape::from_slice(&modes_v);
    let fk = gen_coeffs::<T>(modes.total(), 9);
    let mut out = vec![Complex::<T>::ZERO; pts.len()];
    plan.execute(&fk, &mut out).unwrap();
    let want = type2_direct(&pts, &fk, modes, 1);
    let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
    let err = rel_l2(&got, &want);
    let env = envelope(eps, T::IS_DOUBLE);
    assert!(
        err <= env,
        "type2 {dim}D {method:?} eps={eps:.0e} boundary-pinned: rel_l2 {err:.3e} > {env:.3e}"
    );
}

#[test]
fn boundary_pinned_type1_all_methods_f64() {
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        check_type1::<f64>(2, 64, 1e-9, method);
    }
    // 3D SM for f64 is shared-memory infeasible beyond w=4 (Remark 2),
    // so the 3D sweep uses a coarse tolerance for SM
    check_type1::<f64>(3, 16, 1e-9, Method::Gm);
    check_type1::<f64>(3, 16, 1e-9, Method::GmSort);
    check_type1::<f64>(3, 16, 1e-2, Method::Sm);
}

#[test]
fn boundary_pinned_type1_all_methods_f32() {
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        check_type1::<f32>(2, 64, 1e-5, method);
        check_type1::<f32>(3, 16, 1e-5, method);
    }
}

#[test]
fn boundary_pinned_type2_both_precisions() {
    for dim in [2usize, 3] {
        let n = if dim == 2 { 64 } else { 16 };
        check_type2::<f64>(dim, n, 1e-9, Method::GmSort);
        check_type2::<f64>(dim, n, 1e-9, Method::Gm);
        check_type2::<f32>(dim, n, 1e-5, Method::GmSort);
    }
}

/// The fold seam specifically: `x = -ulp` folds (by `rem_euclid`
/// rounding) to exactly `2π`, i.e. fine coordinate `g = n`. The guard
/// must land it at `g = 0`; the f64 oracle sees the same `x` and agrees
/// up to the envelope. Pre-guard code panicked or misplaced the point's
/// whole weight here.
#[test]
fn fold_seam_negative_ulp() {
    let dev = Device::v100();
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        let mut plan = Plan::<f64>::builder(TransformType::Type1, &[32, 32])
            .eps(1e-9)
            .iflag(-1)
            .method(method)
            .build(&dev)
            .unwrap();
        let pts = Points::<f64> {
            coords: [
                vec![-1e-17, -1e-300, 0.0],
                vec![0.0, -1e-17, -1e-17],
                Vec::new(),
            ],
            dim: 2,
        };
        let cs = gen_strengths::<f64>(3, 3);
        plan.set_pts(&pts).unwrap();
        let modes = Shape::d2(32, 32);
        let mut out = vec![Complex::<f64>::ZERO; modes.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, modes, -1);
        let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
        let err = rel_l2(&got, &want);
        assert!(err <= envelope(1e-9, true), "{method:?}: {err:.3e}");
    }
}

/// CPU reference pipeline handles the same pinned points.
#[test]
fn boundary_pinned_cpu_plan() {
    for dim in [2usize, 3] {
        let n = if dim == 2 { 64 } else { 16 };
        let opts = finufft_cpu::plan::Opts {
            nthreads: 1,
            ..Default::default()
        };
        let mut plan = finufft_cpu::plan::Plan::<f64>::new(
            TransformType::Type1,
            &vec![n; dim],
            -1,
            1e-9,
            opts,
        )
        .unwrap();
        let pts = pinned_points::<f64>(dim, 200, 2 * n);
        let cs = gen_strengths::<f64>(pts.len(), 7);
        plan.set_pts(pts.clone()).unwrap();
        let modes = Shape::from_slice(&vec![n; dim]);
        let mut out = vec![Complex::<f64>::ZERO; modes.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, modes, -1);
        let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
        let err = rel_l2(&got, &want);
        assert!(err <= envelope(1e-9, true), "cpu {dim}D: {err:.3e}");
    }
}
