//! Property-based tests on the core invariants of the workspace, as
//! promised in DESIGN.md §6: FFT algebra on arbitrary sizes, NUFFT
//! tolerance and adjointness for random point sets, bin-sort
//! permutation validity, method equivalence, periodic wrap handling,
//! and scheduler bounds.

use cufinufft::Method;
use gpu_sim::Device;
use nufft_common::metrics::{inner, rel_l2};
use nufft_common::reference::type1_direct;
use nufft_common::{c, Complex, Points, Shape, TransformType};
use nufft_fft::{Direction, Fft1d};
use proptest::prelude::*;

#[allow(dead_code)] // kept as a building block for future strategies
fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex<f64>>> {
    proptest::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(r, i)| c(r, i)),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFT roundtrip scales by n for arbitrary sizes, including primes.
    #[test]
    fn fft_roundtrip_any_size(n in 1usize..200, seed in 0u64..1000) {
        let plan = Fft1d::<f64>::new(n);
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let x: Vec<Complex<f64>> = (0..n).map(|_| c(next(), next())).collect();
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Backward);
        let scaled: Vec<_> = x.iter().map(|z| z.scale(n as f64)).collect();
        prop_assert!(rel_l2(&y, &scaled) < 1e-10);
    }

    /// FFT is linear: F(a x + y) = a F(x) + F(y).
    #[test]
    fn fft_linearity(n in 2usize..64, a in -3.0f64..3.0) {
        let plan = Fft1d::<f64>::new(n);
        let x: Vec<Complex<f64>> = (0..n).map(|j| c((j as f64).sin(), 0.3 * j as f64)).collect();
        let y: Vec<Complex<f64>> = (0..n).map(|j| c(1.0 / (j + 1) as f64, -(j as f64).cos())).collect();
        let mut fx = x.clone();
        plan.process(&mut fx, Direction::Forward);
        let mut fy = y.clone();
        plan.process(&mut fy, Direction::Forward);
        let mut combo: Vec<Complex<f64>> = x.iter().zip(&y).map(|(u, v)| u.scale(a) + *v).collect();
        plan.process(&mut combo, Direction::Forward);
        let want: Vec<Complex<f64>> = fx.iter().zip(&fy).map(|(u, v)| u.scale(a) + *v).collect();
        prop_assert!(rel_l2(&combo, &want) < 1e-11);
    }

    /// Parseval: energy is conserved up to the 1/n convention.
    #[test]
    fn fft_parseval(n in 2usize..128) {
        let plan = Fft1d::<f64>::new(n);
        let x: Vec<Complex<f64>> = (0..n).map(|j| c((1.7 * j as f64).sin(), (0.4 * j as f64).cos())).collect();
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        plan.process(&mut y, Direction::Forward);
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!(((ey / n as f64) - ex).abs() < 1e-9 * ex.max(1.0));
    }

    /// The GPU type-1 NUFFT meets its requested tolerance for arbitrary
    /// point positions (including boundary values +/- pi).
    #[test]
    fn nufft_tolerance_random_points(
        xs in proptest::collection::vec(-std::f64::consts::PI..std::f64::consts::PI, 5..40),
        seed in 0u64..100,
    ) {
        let m = xs.len();
        let ys: Vec<f64> = xs.iter().rev().map(|v| (v * 0.7).sin() * std::f64::consts::PI * 0.999).collect();
        let pts = Points::<f64> { coords: [xs, ys, Vec::new()], dim: 2 };
        let cs = nufft_common::gen_strengths::<f64>(m, seed);
        let modes = [12usize, 14];
        let shape = Shape::from_slice(&modes);
        let dev = Device::v100();
        let mut plan = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes)
            .eps(1e-9)
            .build(&dev)
            .unwrap();
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        let truth = type1_direct(&pts, &cs, shape, -1);
        prop_assert!(rel_l2(&out, &truth) < 1e-7, "err {}", rel_l2(&out, &truth));
    }

    /// execute_many over B stacked vectors is bitwise identical to B
    /// sequential executes: batching and stream pipelining change the
    /// schedule, never the arithmetic.
    #[test]
    fn execute_many_matches_sequential_bitwise(
        m in 10usize..150,
        b in 1usize..6,
        max_batch in 0usize..4,
        seed in 0u64..50,
    ) {
        let modes = [12usize, 10];
        let shape = Shape::from_slice(&modes);
        let fine = shape.map(|_, n| 2 * n);
        let pts = nufft_common::gen_points::<f64>(nufft_common::PointDist::Rand, 2, m, fine, seed);
        let dev = Device::v100();
        let mut plan = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes)
            .eps(1e-8)
            .max_batch(max_batch)
            .build(&dev)
            .unwrap();
        plan.set_pts(&pts).unwrap();
        let n = shape.total();
        let batch: Vec<Complex<f64>> = (0..b)
            .flat_map(|v| nufft_common::gen_strengths::<f64>(m, seed + 10 + v as u64))
            .collect();
        let mut seq = vec![Complex::<f64>::ZERO; n * b];
        for v in 0..b {
            let (cs, out) = (&batch[v * m..(v + 1) * m], &mut seq[v * n..(v + 1) * n]);
            plan.execute(cs, out).unwrap();
        }
        let mut many = vec![Complex::<f64>::ZERO; n * b];
        plan.execute_many(&batch, &mut many).unwrap();
        for i in 0..n * b {
            prop_assert_eq!(many[i].re.to_bits(), seq[i].re.to_bits(), "re at {}", i);
            prop_assert_eq!(many[i].im.to_bits(), seq[i].im.to_bits(), "im at {}", i);
        }
    }

    /// All spreading methods produce the same sums (up to fp
    /// reassociation) on the same inputs.
    #[test]
    fn spreading_methods_equivalent(m in 10usize..200, seed in 0u64..50) {
        let modes = [16usize, 16];
        let shape = Shape::from_slice(&modes);
        let fine = shape.map(|_, n| 2 * n);
        let pts = nufft_common::gen_points::<f64>(nufft_common::PointDist::Rand, 2, m, fine, seed);
        let cs = nufft_common::gen_strengths::<f64>(m, seed + 1);
        let dev = Device::v100();
        let mut outs = Vec::new();
        for method in [Method::Gm, Method::GmSort, Method::Sm] {
            let mut plan = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes)
                .eps(1e-8)
                .method(method)
                .build(&dev)
                .unwrap();
            plan.set_pts(&pts).unwrap();
            let mut out = vec![Complex::<f64>::ZERO; shape.total()];
            plan.execute(&cs, &mut out).unwrap();
            outs.push(out);
        }
        prop_assert!(rel_l2(&outs[0], &outs[1]) < 1e-12);
        prop_assert!(rel_l2(&outs[0], &outs[2]) < 1e-12);
    }

    /// Type 1 and type 2 with conjugate signs are adjoint.
    #[test]
    fn nufft_adjointness(m in 5usize..80, seed in 0u64..50) {
        let modes = [10usize, 8];
        let shape = Shape::from_slice(&modes);
        let fine = shape.map(|_, n| 2 * n);
        let pts = nufft_common::gen_points::<f64>(nufft_common::PointDist::Rand, 2, m, fine, seed);
        let cs = nufft_common::gen_strengths::<f64>(m, seed + 1);
        let fs = nufft_common::gen_strengths::<f64>(shape.total(), seed + 2);
        let dev = Device::v100();
        let mut p1 = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes)
            .eps(1e-11)
            .build(&dev)
            .unwrap();
        let mut p2 = cufinufft::Plan::<f64>::builder(TransformType::Type2, &modes)
            .eps(1e-11)
            .build(&dev)
            .unwrap();
        p1.set_pts(&pts).unwrap();
        p2.set_pts(&pts).unwrap();
        let mut a = vec![Complex::<f64>::ZERO; shape.total()];
        p1.execute(&cs, &mut a).unwrap();
        let mut b = vec![Complex::<f64>::ZERO; m];
        p2.execute(&fs, &mut b).unwrap();
        let lhs = inner(&a, &fs);
        let rhs = inner(&cs, &b);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// Bin sorting is always a valid permutation with points inside
    /// their bins, for any bin shape.
    #[test]
    fn bin_sort_is_permutation(
        m in 0usize..500,
        b1 in 1usize..64,
        b2 in 1usize..64,
        seed in 0u64..100,
    ) {
        let fine = Shape::d2(128, 96);
        let pts = nufft_common::gen_points::<f32>(nufft_common::PointDist::Rand, 2, m, fine, seed);
        let dev = Device::v100();
        dev.set_record_timeline(false);
        let s = cufinufft::bins::gpu_bin_sort(&dev, &pts, fine, [b1, b2, 1]);
        let mut seen = vec![false; m];
        for &p in &s.perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&x| x));
        prop_assert_eq!(*s.starts.last().unwrap() as usize, m);
    }

    /// The block scheduler never beats the theoretical lower bound and
    /// never exceeds the serial sum.
    #[test]
    fn scheduler_bounds(
        times in proptest::collection::vec(0.0f64..10.0, 1..200),
        slots in 1usize..128,
    ) {
        let ms = gpu_sim::sched::makespan(&times, slots);
        let total: f64 = times.iter().sum();
        let longest = times.iter().cloned().fold(0.0, f64::max);
        let lb = (total / slots as f64).max(longest);
        prop_assert!(ms + 1e-9 >= lb);
        prop_assert!(ms <= total + 1e-9);
    }

    /// Subproblem decomposition covers every point exactly once and
    /// respects the cap.
    #[test]
    fn subproblems_partition(m in 1usize..3000, msub in 1usize..600, seed in 0u64..50) {
        let fine = Shape::d2(64, 64);
        let pts = nufft_common::gen_points::<f32>(nufft_common::PointDist::Cluster, 2, m, fine, seed);
        let dev = Device::v100();
        dev.set_record_timeline(false);
        let s = cufinufft::bins::gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let subs = cufinufft::bins::build_subproblems(&dev, &s, msub);
        let total: u32 = subs.iter().map(|sp| sp.len).sum();
        prop_assert_eq!(total as usize, m);
        prop_assert!(subs.iter().all(|sp| sp.len as usize <= msub));
        let mut cursor = 0u32;
        for sp in &subs {
            prop_assert_eq!(sp.start, cursor);
            cursor += sp.len;
        }
    }
}
