//! Acceptance tests for the simulated-GPU race detector and kernel
//! access-contract checker (DESIGN.md §5h). Two halves:
//!
//! * **positive**: with `HazardMode::Check` on, every shipped spread /
//!   interp / bin-sort kernel must report zero hazards and zero
//!   contract violations across the {GM, GM-sort, SM} x {uniform,
//!   clustered} matrix — the paper's atomic-update and barrier
//!   discipline, checked rather than assumed;
//! * **negative**: a deliberately broken spread variant that updates
//!   the fine grid with plain writes must be flagged, with the finding
//!   attributed to the right buffer and a genuinely concurrent access
//!   pair. A detector that can't fail is not evidence.
//!
//! The default run covers 2D f32. `HAZARD=full` widens the sweep to 3D
//! and f64 (see `scripts/check.sh`).

use cufinufft::spread::{spread_gm_racy, PtsRef};
use cufinufft::{Method, Plan, TransformType};
use gpu_sim::{AccessKind, Device, HazardMode, HazardReport};
use nufft_common::real::Real;
use nufft_common::workload::{gen_points, gen_strengths, PointDist, Points};
use nufft_common::Complex;
use nufft_kernels::EsKernel;
use nufft_trace::Trace;

const N: usize = 32;
const M: usize = 1500;

fn pts_ref<T: Real>(p: &Points<T>) -> PtsRef<'_, T> {
    PtsRef {
        coords: [&p.coords[0], &p.coords[1], &p.coords[2]],
        dim: p.dim,
    }
}

/// Build a checked plan, run a type-1 (spread) and a type-2 (interp)
/// transform, and return the accumulated hazard findings.
fn checked_lifecycle<T: Real>(
    modes: &[usize],
    method: Method,
    dist: PointDist,
    m: usize,
    trace: Option<&Trace>,
) -> HazardReport {
    let dev = Device::v100();
    for (ttype, seed) in [(TransformType::Type1, 11), (TransformType::Type2, 12)] {
        let mut b = Plan::<T>::builder(ttype, modes)
            .eps(1e-5)
            .method(method)
            .hazard(HazardMode::Check);
        if let Some(t) = trace {
            b = b.tracing(t);
        }
        let mut plan = b.build(&dev).expect("plan build");
        let dim = modes.len();
        let pts = gen_points::<T>(dist, dim, m, plan.fine_grid_shape(), seed);
        plan.set_pts(&pts).expect("set_pts");
        let nmodes: usize = modes.iter().product();
        match ttype {
            TransformType::Type1 => {
                let c = gen_strengths::<T>(m, seed + 1);
                let mut f = vec![Complex::<T>::ZERO; nmodes];
                plan.execute(&c, &mut f).expect("type1 execute");
            }
            _ => {
                let f = gen_strengths::<T>(nmodes, seed + 1);
                let mut c = vec![Complex::<T>::ZERO; m];
                plan.execute(&f, &mut c).expect("type2 execute");
            }
        }
    }
    dev.hazard_findings()
}

fn assert_clean(report: &HazardReport, what: &str) {
    assert!(
        !report.kernels.is_empty(),
        "{what}: hazard mode checked no kernels — the detector never ran"
    );
    for k in &report.kernels {
        assert!(
            k.is_clean(),
            "{what}: kernel '{}' not clean: {} hazards {:?}, violations {:?}",
            k.kernel,
            k.hazards_total,
            k.hazards.first(),
            k.violations
        );
        assert!(k.blocks > 0 || k.accesses == 0, "{what}: empty launch");
    }
}

// ---------------------------------------------------------------------
// positive half: the shipped kernels are clean across the paper matrix
// ---------------------------------------------------------------------

#[test]
fn gm_spreading_is_clean_uniform_and_clustered() {
    for dist in [PointDist::Rand, PointDist::Cluster] {
        let r = checked_lifecycle::<f32>(&[N, N], Method::Gm, dist, M, None);
        assert_clean(&r, &format!("GM/{dist:?}"));
        assert!(
            r.kernels.iter().any(|k| k.kernel == "spread_GM"),
            "GM lifecycle never checked the GM spread kernel"
        );
    }
}

#[test]
fn gm_sort_spreading_and_bin_kernels_are_clean() {
    for dist in [PointDist::Rand, PointDist::Cluster] {
        let r = checked_lifecycle::<f32>(&[N, N], Method::GmSort, dist, M, None);
        assert_clean(&r, &format!("GM-sort/{dist:?}"));
        for name in [
            "spread_GM-sort",
            "calc_binidx",
            "bin_histogram",
            "bin_scan",
            "bin_scatter",
        ] {
            assert!(
                r.kernels.iter().any(|k| k.kernel == name),
                "GM-sort lifecycle never checked '{name}'"
            );
        }
    }
}

#[test]
fn sm_spreading_is_clean_uniform_and_clustered() {
    for dist in [PointDist::Rand, PointDist::Cluster] {
        let r = checked_lifecycle::<f32>(&[N, N], Method::Sm, dist, M, None);
        assert_clean(&r, &format!("SM/{dist:?}"));
        assert!(
            r.kernels.iter().any(|k| k.kernel == "spread_SM"),
            "SM lifecycle never checked the SM spread kernel"
        );
    }
}

#[test]
fn interp_kernels_are_clean_and_write_each_output_once() {
    // type 2 runs inside checked_lifecycle; here verify the interp
    // launches specifically got traced and came out clean
    let r = checked_lifecycle::<f32>(&[N, N], Method::GmSort, PointDist::Rand, M, None);
    let interp: Vec<_> = r
        .kernels
        .iter()
        .filter(|k| k.kernel.starts_with("interp"))
        .collect();
    assert!(!interp.is_empty(), "no interp launch was checked");
    for k in interp {
        assert!(k.is_clean(), "interp '{}' not clean", k.kernel);
        assert!(k.accesses > 0, "interp '{}' traced no accesses", k.kernel);
    }
}

#[test]
fn hazard_counters_flow_through_the_trace() {
    let t = Trace::new();
    let r = checked_lifecycle::<f32>(&[N, N], Method::Sm, PointDist::Rand, M, Some(&t));
    assert_clean(&r, "SM traced");
    let rep = t.report();
    let checked = rep.counters.get("hazard.kernels_checked").copied();
    assert!(
        checked.unwrap_or(0) > 0,
        "hazard.kernels_checked missing from trace: {:?}",
        rep.counters.keys().collect::<Vec<_>>()
    );
    assert_eq!(rep.counters.get("hazard.races").copied().unwrap_or(0), 0);
    assert_eq!(
        rep.counters
            .get("hazard.contract_violations")
            .copied()
            .unwrap_or(0),
        0
    );
    assert!(rep.counters.get("hazard.accesses").copied().unwrap_or(0) > 0);
}

#[test]
fn hazard_mode_off_checks_nothing_and_costs_nothing() {
    let dev = Device::v100();
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[N, N])
        .eps(1e-5)
        .build(&dev)
        .unwrap();
    let pts = gen_points::<f32>(PointDist::Rand, 2, M, plan.fine_grid_shape(), 17);
    plan.set_pts(&pts).unwrap();
    let c = gen_strengths::<f32>(M, 18);
    let mut f = vec![Complex::<f32>::ZERO; N * N];
    plan.execute(&c, &mut f).unwrap();
    let findings = plan.hazard_findings();
    assert!(findings.kernels.is_empty());
    assert!(findings.is_clean());
}

/// Full sweep (opt-in: `HAZARD=full cargo test --test hazard`): 3D and
/// double precision, both distributions, every method that is feasible
/// for the configuration.
#[test]
fn full_sweep_3d_and_double_precision() {
    if std::env::var("HAZARD").as_deref() != Ok("full") {
        return; // reduced default run; scripts/check.sh opts in
    }
    for dist in [PointDist::Rand, PointDist::Cluster] {
        // 3D f32: SM feasible at this accuracy (paper Remark 2)
        for method in [Method::Gm, Method::GmSort, Method::Sm] {
            let r = checked_lifecycle::<f32>(&[16, 16, 16], method, dist, 2000, None);
            assert_clean(&r, &format!("3D f32 {method:?}/{dist:?}"));
        }
        // 3D f64: SM infeasible -> GM-sort (the paper's choice there)
        for method in [Method::Gm, Method::GmSort] {
            let r = checked_lifecycle::<f64>(&[16, 16, 16], method, dist, 2000, None);
            assert_clean(&r, &format!("3D f64 {method:?}/{dist:?}"));
        }
        // 2D f64 high-accuracy SM
        let r = checked_lifecycle::<f64>(&[N, N], Method::Sm, dist, M, None);
        assert_clean(&r, &format!("2D f64 SM/{dist:?}"));
    }
}

// ---------------------------------------------------------------------
// negative half: the deliberately racy spread variant must be flagged
// ---------------------------------------------------------------------

#[test]
fn racy_spread_is_flagged_on_the_grid_buffer_with_a_real_access_pair() {
    let dev = Device::v100();
    dev.set_hazard_mode(HazardMode::Check);
    let fine = nufft_common::shape::Shape::d2(64, 64);
    let kernel = EsKernel::with_width(6);
    // clustered points guarantee overlapping footprints, i.e. the race
    // is not hypothetical: distinct threads really hit the same word
    let m = 800;
    let pts = gen_points::<f32>(PointDist::Cluster, 2, m, fine, 23);
    let cs = gen_strengths::<f32>(m, 24);
    let order: Vec<u32> = (0..m as u32).collect();
    let mut grid = vec![Complex::<f32>::ZERO; fine.total()];
    spread_gm_racy(
        &dev,
        "spread_GM_racy",
        &kernel,
        fine,
        &pts_ref(&pts),
        &cs,
        &order,
        &mut grid,
        128,
    )
    .unwrap();
    let findings = dev.hazard_findings();
    let k = findings
        .for_kernel("spread_GM_racy")
        .next()
        .expect("racy launch was checked");
    assert!(
        k.hazards_total > 0,
        "the detector passed a kernel that races by construction"
    );
    assert!(!k.hazards.is_empty());
    for h in &k.hazards {
        assert_eq!(h.buffer, "fine_grid", "race attributed to the wrong buffer");
        assert_eq!(h.first.kind, AccessKind::Write);
        assert_eq!(h.second.kind, AccessKind::Write);
        // a real conflict needs two different executors: different
        // threads in one block epoch, or different blocks entirely
        if h.intra_block {
            assert_eq!(h.first.block, h.second.block);
            assert_eq!(h.first.epoch, h.second.epoch);
            assert_ne!(h.first.thread, h.second.thread);
        } else {
            assert_ne!(h.first.block, h.second.block);
        }
    }
    // the racy kernel skips atomics entirely, so its *contract* is
    // consistent — only the race analysis catches it, which pins the
    // failure on the right subsystem
    assert!(
        k.violations.is_empty(),
        "contract noise would blur the race attribution: {:?}",
        k.violations
    );
    // and the correct variant on identical inputs stays clean
    dev.clear_hazard_findings();
    let mut grid2 = vec![Complex::<f32>::ZERO; fine.total()];
    cufinufft::spread::spread_gm(
        &dev,
        "spread_GM_fixed",
        &kernel,
        fine,
        &pts_ref(&pts),
        &cs,
        &order,
        &mut grid2,
        128,
        1.0,
    )
    .unwrap();
    let clean = dev.hazard_findings();
    let k = clean.for_kernel("spread_GM_fixed").next().expect("checked");
    assert!(
        k.is_clean(),
        "atomic spread flagged: {:?}",
        k.hazards.first()
    );
    // the race is performance-invisible in a serial simulator: both
    // variants produce identical sums, which is why the checker exists
    for (a, b) in grid.iter().zip(grid2.iter()) {
        assert_eq!(a.re, b.re);
        assert_eq!(a.im, b.im);
    }
}
