//! Acceptance tests for the tracing layer: a traced 3D type-1 SM run
//! must export a valid Chrome trace-event JSON from which the paper's
//! Table I (spread dominates exec) and Fig. 6 (SM insensitive to point
//! distribution) observations can be read back without consulting the
//! library's own timing structs.

use cufinufft_repro::traced_type1_3d;
use nufft_common::workload::PointDist;
use nufft_trace::json::Json;
use std::collections::BTreeMap;

const N: usize = 32;

/// Sum `dur` (µs) of complete events with the given pid/tid predicate,
/// keyed by event name.
fn sum_durs(doc: &Json, keep: impl Fn(f64, f64) -> bool) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    for ev in events {
        if ev.get("ph").and_then(|v| v.as_str()) != Some("X") {
            continue;
        }
        let pid = ev.get("pid").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let tid = ev.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if !keep(pid, tid) {
            continue;
        }
        let name = ev.get("name").and_then(|v| v.as_str()).unwrap().to_string();
        let dur = ev.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
        *out.entry(name).or_insert(0.0) += dur;
    }
    out
}

/// Per-stage device time (µs) read off the GPU process's plan lane
/// (pid 2, tid 1 in the chrome export).
fn stage_totals(doc: &Json) -> BTreeMap<String, f64> {
    sum_durs(doc, |pid, tid| pid == 2.0 && tid == 1.0)
}

/// The `bins.hist.*` counters from the export's top-level counters map.
fn bin_histogram(doc: &Json) -> BTreeMap<String, f64> {
    doc.get("counters")
        .and_then(|v| v.as_object())
        .expect("counters object")
        .iter()
        .filter(|(k, _)| k.starts_with("bins.hist."))
        .map(|(k, v)| (k.clone(), v.as_f64().unwrap()))
        .collect()
}

fn exec_wall_us(stages: &BTreeMap<String, f64>) -> f64 {
    // exec = spread + fft + deconvolve; stage.sort belongs to setpts
    stages.get("stage.spread").copied().unwrap_or(0.0)
        + stages.get("stage.fft").copied().unwrap_or(0.0)
        + stages.get("stage.deconv").copied().unwrap_or(0.0)
}

#[test]
fn chrome_export_parses_and_spread_dominates_gpu_time() {
    let report = traced_type1_3d(N, PointDist::Rand, 11);
    let text = report.chrome_json();
    let doc = Json::parse(&text).expect("exporter emits valid JSON");

    // kernel/memcpy lanes: everything on the GPU process except the
    // plan-stage lane is real simulated device work
    let busy = sum_durs(&doc, |pid, tid| pid == 2.0 && tid != 1.0);
    assert!(!busy.is_empty(), "no device events in trace");
    let (top_name, top_dur) = busy
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, v)| (k.clone(), *v))
        .unwrap();
    assert!(
        top_name.starts_with("spread"),
        "largest simulated-GPU consumer should be the spreader, got {top_name} ({top_dur} us): {busy:?}"
    );

    // same conclusion from the stage lane (Table I)
    let stages = stage_totals(&doc);
    let spread = stages["stage.spread"];
    for (name, dur) in &stages {
        if name != "stage.spread" {
            assert!(
                spread > *dur,
                "stage.spread ({spread} us) should dominate {name} ({dur} us)"
            );
        }
    }

    // host process carries the plan lifecycle spans
    let host = sum_durs(&doc, |pid, _| pid == 1.0);
    assert!(host.contains_key("plan.build"));
    assert!(host.contains_key("plan.setpts"));
    assert!(host.contains_key("plan.execute"));
    assert!(host.contains_key("spread"));
}

#[test]
fn stage_durations_feed_per_method_histograms() {
    let report = traced_type1_3d(N, PointDist::Rand, 31);
    // SM type-1: spread/fft/deconv run under the sm method tag, the
    // bin-sort too (it rides setpts of the same plan)
    for key in [
        "stage.sort.sm",
        "stage.spread.sm",
        "stage.fft.sm",
        "stage.deconv.sm",
    ] {
        let h = report.histograms.get(key).unwrap_or_else(|| {
            panic!(
                "missing stage histogram {key}: {:?}",
                report.histograms.keys()
            )
        });
        assert!(h.count >= 1, "{key} recorded no samples");
        assert!(h.sum > 0.0, "{key} durations should be positive");
        assert!(h.quantile(0.5).is_some());
    }
    // no gm-tagged histograms from an sm-only run
    assert!(report.histograms.keys().all(|k| !k.ends_with(".gm")));
}

#[test]
fn histogram_differs_but_sm_exec_is_distribution_insensitive() {
    let uniform = traced_type1_3d(N, PointDist::Rand, 21);
    let clustered = traced_type1_3d(N, PointDist::Cluster, 21);
    let doc_u = Json::parse(&uniform.chrome_json()).unwrap();
    let doc_c = Json::parse(&clustered.chrome_json()).unwrap();

    // load-balance counters see the clustering...
    let hist_u = bin_histogram(&doc_u);
    let hist_c = bin_histogram(&doc_c);
    assert!(!hist_u.is_empty() && !hist_c.is_empty());
    assert_ne!(
        hist_u, hist_c,
        "uniform and clustered runs should populate the bin histogram differently"
    );
    // ...and the clustered run leaves most bins empty
    let empty_u = hist_u.get("bins.hist.empty").copied().unwrap_or(0.0);
    let empty_c = hist_c.get("bins.hist.empty").copied().unwrap_or(0.0);
    assert!(
        empty_c > empty_u,
        "clustered run should have more empty bins ({empty_c} vs {empty_u})"
    );

    // ...but SM exec wall time barely moves (Fig. 6)
    let wall_u = exec_wall_us(&stage_totals(&doc_u));
    let wall_c = exec_wall_us(&stage_totals(&doc_c));
    assert!(wall_u > 0.0 && wall_c > 0.0);
    let ratio = (wall_u / wall_c).max(wall_c / wall_u);
    assert!(
        ratio <= 1.25,
        "SM exec wall should be distribution-insensitive: uniform {wall_u} us, clustered {wall_c} us (ratio {ratio:.3})"
    );
}
